// Package sched provides an OpenMP-style parallel-for over goroutine
// worker teams, with the three loop schedules the paper's implementation
// uses: static (Apriori's support-counting loop, §III), dynamic with a
// small chunk (Eclat's outer class loop, §IV), and guided.
//
// The chunk hand-out logic lives in a Chunker so that the NUMA machine
// simulator (package machine) can replay exactly the same iteration→worker
// assignment policy inside its discrete-event loop: the real execution and
// the simulated one share a single source of truth for scheduling
// semantics.
package sched

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runctl"
)

// Policy names an OpenMP loop schedule.
type Policy int

const (
	// Static splits the iteration space into equal contiguous blocks,
	// one per worker (chunk == 0), or deals fixed-size chunks round-robin
	// (chunk > 0). Assignment is decided entirely up front.
	Static Policy = iota
	// Dynamic deals fixed-size chunks (default 1) to workers as they
	// become idle, from a shared counter.
	Dynamic
	// Guided deals shrinking chunks: each hand-out takes
	// ceil(remaining/workers) iterations, bounded below by the chunk
	// size (default 1).
	Guided
	// Steal selects work-stealing execution: tree-shaped loops
	// (Team.ForTreeCtx) run on per-worker deques whose tasks may spawn
	// stealable subtasks, so one oversized subtree no longer pins its
	// worker. Flat loops run under it exactly like Dynamic with chunk 1
	// — OpenMP has no such schedule, which is why the paper stops at
	// dynamic,1; see DESIGN.md for the fidelity argument.
	Steal
)

func (p Policy) String() string {
	switch p {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	case Steal:
		return "steal"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy maps a schedule name to its Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "static":
		return Static, nil
	case "dynamic":
		return Dynamic, nil
	case "guided":
		return Guided, nil
	case "steal":
		return Steal, nil
	}
	return 0, fmt.Errorf("sched: unknown policy %q", s)
}

// Schedule pairs a policy with its chunk size. Chunk 0 means the policy's
// default (whole blocks for static, 1 for dynamic and guided).
type Schedule struct {
	Policy Policy
	Chunk  int
}

func (s Schedule) String() string {
	if s.Chunk > 0 {
		return fmt.Sprintf("%v,%d", s.Policy, s.Chunk)
	}
	return s.Policy.String()
}

// Chunker deals out half-open iteration ranges [lo, hi) of a loop of n
// iterations to workers. ok=false means the worker is done. Implementations
// are safe for concurrent use by the team's workers.
type Chunker interface {
	Next(worker int) (lo, hi int, ok bool)
}

// NewChunker builds the Chunker for a loop of n iterations run by p
// workers under s. It panics on n < 0 or p < 1, which indicate caller
// bugs, not runtime conditions.
func NewChunker(n, p int, s Schedule) Chunker {
	if n < 0 {
		panic("sched: negative iteration count")
	}
	if p < 1 {
		panic("sched: team needs at least one worker")
	}
	switch s.Policy {
	case Static:
		return newStaticChunker(n, p, s.Chunk)
	case Dynamic, Steal:
		// Flat loops have no subtree structure to steal; under Steal
		// they use the dynamic chunker (chunk 1 unless overridden),
		// matching the paper's dynamic,1 baseline.
		c := s.Chunk
		if c < 1 {
			c = 1
		}
		return &dynamicChunker{n: n, chunk: c}
	case Guided:
		c := s.Chunk
		if c < 1 {
			c = 1
		}
		return &guidedChunker{n: n, p: p, minChunk: c}
	}
	panic(fmt.Sprintf("sched: unknown policy %v", s.Policy))
}

// staticChunker precomputes each worker's chunk list.
type staticChunker struct {
	chunks [][][2]int // per worker: list of [lo,hi)
	pos    []int64    // per worker cursor (atomic, in case of misuse)
}

func newStaticChunker(n, p, chunk int) *staticChunker {
	c := &staticChunker{chunks: make([][][2]int, p), pos: make([]int64, p)}
	if n == 0 {
		return c
	}
	if chunk < 1 {
		// Contiguous near-equal blocks, like OpenMP schedule(static).
		base, rem := n/p, n%p
		lo := 0
		for w := 0; w < p; w++ {
			size := base
			if w < rem {
				size++
			}
			if size > 0 {
				c.chunks[w] = append(c.chunks[w], [2]int{lo, lo + size})
			}
			lo += size
		}
		return c
	}
	// Fixed chunks dealt round-robin, like schedule(static, chunk).
	w := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		c.chunks[w] = append(c.chunks[w], [2]int{lo, hi})
		w = (w + 1) % p
	}
	return c
}

func (c *staticChunker) Next(worker int) (int, int, bool) {
	i := atomic.AddInt64(&c.pos[worker], 1) - 1
	lst := c.chunks[worker]
	if int(i) >= len(lst) {
		return 0, 0, false
	}
	ch := lst[i]
	return ch[0], ch[1], true
}

// newWeightedStaticChunker partitions [0, n) into p contiguous blocks
// of near-equal cumulative weight: worker w's block ends where the
// running weight first reaches total·(w+1)/p. This is the weighted
// analogue of schedule(static): assignment is still decided entirely
// up front and iterations stay contiguous, but the cut points follow
// estimated cost instead of iteration count. All-zero (or negative)
// totals degrade to the equal split.
func newWeightedStaticChunker(n, p int, weights []int64) *staticChunker {
	var total int64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return newStaticChunker(n, p, 0)
	}
	c := &staticChunker{chunks: make([][][2]int, p), pos: make([]int64, p)}
	lo := 0
	var acc int64
	for w := 0; w < p; w++ {
		hi := lo
		if w == p-1 {
			hi = n
		} else {
			target := total * int64(w+1) / int64(p)
			for hi < n && acc < target {
				acc += weights[hi]
				hi++
			}
		}
		if hi > lo {
			c.chunks[w] = append(c.chunks[w], [2]int{lo, hi})
		}
		lo = hi
	}
	return c
}

// dynamicChunker deals fixed chunks from a shared atomic counter.
type dynamicChunker struct {
	next  int64
	n     int
	chunk int
}

func (c *dynamicChunker) Next(int) (int, int, bool) {
	lo := int(atomic.AddInt64(&c.next, int64(c.chunk))) - c.chunk
	if lo >= c.n {
		return 0, 0, false
	}
	hi := lo + c.chunk
	if hi > c.n {
		hi = c.n
	}
	return lo, hi, true
}

// guidedChunker deals shrinking chunks under a mutex (the hand-out is
// rare compared to the work inside a chunk).
type guidedChunker struct {
	mu       sync.Mutex
	next     int
	n        int
	p        int
	minChunk int
}

func (c *guidedChunker) Next(int) (int, int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	remaining := c.n - c.next
	if remaining <= 0 {
		return 0, 0, false
	}
	size := (remaining + c.p - 1) / c.p
	if size < c.minChunk {
		size = c.minChunk
	}
	if size > remaining {
		size = remaining
	}
	lo := c.next
	c.next += size
	return lo, lo + size, true
}

// Team is a reusable group of workers, the analogue of an OpenMP thread
// team. The zero value is not usable; construct with NewTeam.
type Team struct {
	workers int
	metrics *Metrics
}

// NewTeam returns a team of n workers (n >= 1; n is clamped to 1
// otherwise). The paper's experiments vary n from 1 to 256.
func NewTeam(n int) *Team {
	if n < 1 {
		n = 1
	}
	return &Team{workers: n}
}

// Workers returns the team size.
func (t *Team) Workers() int { return t.workers }

// SetMetrics attaches a per-worker load recorder: every subsequent
// ForCtx/ForChunksCtx loop appends one PhaseStats to m. nil detaches.
func (t *Team) SetMetrics(m *Metrics) { t.metrics = m }

// cancelStride bounds how many iterations a worker runs between stop
// checks inside one chunk, so a cancelled run unwinds promptly even
// under schedule(static, 0), whose chunks span 1/p of the whole loop.
// The check is one atomic load; at this stride it is noise next to the
// set-intersection work of a single iteration.
const cancelStride = 256

// loopState is the per-loop shared unwinding state: the run's Control
// (may be nil) plus a loop-local latch for recovered panics, so panic
// containment works even for loops without run control. rec, when
// non-nil, accumulates per-worker load counters for the loop.
type loopState struct {
	rc       *runctl.Control
	rec      *phaseRec
	panicErr atomic.Pointer[runctl.WorkerPanicError]
}

// stopped is the worker fast path: one or two atomic loads.
func (ls *loopState) stopped() bool {
	return ls.panicErr.Load() != nil || ls.rc.Stopped()
}

// recover converts a body panic into a WorkerPanicError, latches it, and
// stops the run so sibling workers drain at their next check.
func (ls *loopState) recover(w int) {
	if r := recover(); r != nil {
		perr := &runctl.WorkerPanicError{Value: r, Worker: w, Stack: debug.Stack()}
		ls.panicErr.CompareAndSwap(nil, perr)
		ls.rc.Stop(perr)
	}
}

// err returns the loop's outcome: a contained panic wins over a budget
// or cancellation stop, which wins over success.
func (ls *loopState) err() error {
	if perr := ls.panicErr.Load(); perr != nil {
		return perr
	}
	return ls.rc.Cause()
}

// runChunk executes chunk [lo, hi) for worker w, returning the number of
// iterations executed and whether the chunk ran to completion (false
// when a stop check fired mid-chunk).
func (ls *loopState) runChunk(w, lo, hi int, body func(worker, i int)) (done int, completed bool) {
	for lo < hi {
		end := lo + cancelStride
		if end > hi {
			end = hi
		}
		for i := lo; i < end; i++ {
			body(w, i)
		}
		done += end - lo
		lo = end
		if lo < hi && ls.stopped() {
			return done, false
		}
	}
	return done, true
}

// runWorker drains chunks for worker w until the chunker is empty or the
// loop stops. Stop checks run at every chunk boundary and every
// cancelStride iterations within a chunk; the fault-injection hook (see
// fault.go) fires at each chunk boundary. With metrics attached, each
// chunk's busy time and iteration count are accounted to the worker (a
// chunk ended by a contained panic loses its accounting).
func (ls *loopState) runWorker(w int, ch Chunker, body func(worker, i int)) {
	defer ls.recover(w)
	for {
		if ls.stopped() {
			return
		}
		lo, hi, ok := ch.Next(w)
		if !ok {
			return
		}
		injectFault(w, lo, hi, ls.rc)
		if ls.rec == nil {
			if _, completed := ls.runChunk(w, lo, hi, body); !completed {
				return
			}
			continue
		}
		t0 := time.Now()
		done, completed := ls.runChunk(w, lo, hi, body)
		ls.rec.addChunk(w, lo, hi, int64(done), t0, time.Since(t0))
		if !completed {
			return
		}
	}
}

// ForCtx executes body(worker, i) for every i in [0, n) under schedule
// s, like For, but threads a run control: when rc is cancelled, stopped
// or over budget, workers drain at their next chunk boundary (or within
// cancelStride iterations inside a chunk) and ForCtx returns rc's stop
// cause with the remaining iterations unrun. A panic in body is
// contained: the panicking worker records a *runctl.WorkerPanicError,
// the remaining chunks are cancelled, the team drains cleanly, and the
// error is returned instead of crashing the process.
//
// rc may be nil, which disables cancellation and budgets but keeps
// panic containment. A nil return value means every iteration ran.
func (t *Team) ForCtx(rc *runctl.Control, n int, s Schedule, body func(worker, i int)) error {
	ls := &loopState{rc: rc}
	if err := rc.Err(); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	p := t.workers
	if p > n {
		p = n
	}
	ls.rec = t.metrics.begin(n, p, s)
	defer ls.rec.finish(t.metrics)
	return t.runLoop(ls, p, NewChunker(n, p, s), body)
}

// runLoop drives a prepared chunker on the team and returns the loop's
// outcome — the shared tail of ForCtx and ForWeightedCtx.
//
// Worker goroutines are spawned fresh per loop, which is what makes
// per-run/per-phase pprof attribution free: goroutines inherit the
// spawner's pprof label set, so when the coordinator carries
// fim_run_id/fim_phase labels (internal/obs/prof, set at each
// level_start), every worker's CPU samples are labeled with no
// scheduler plumbing at all.
func (t *Team) runLoop(ls *loopState, p int, ch Chunker, body func(worker, i int)) error {
	if p == 1 {
		ls.runWorker(0, ch, body)
		return ls.err()
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			ls.runWorker(w, ch, body)
		}(w)
	}
	wg.Wait()
	return ls.err()
}

// ForWeightedCtx is ForCtx with a per-iteration cost estimate. Under
// schedule(static) with the default chunk, the contiguous per-worker
// blocks are cut at near-equal cumulative weight instead of equal
// iteration count — the paper's static-balance property preserved when
// iterations are whole prefix blocks of very different combine cost.
// Every other schedule self-balances by handing out work on demand, so
// the weights are ignored and the call is exactly ForCtx (under Steal
// a flat loop is dynamic with chunk 1, so each hand-out is a single
// whole iteration either way). len(weights) must be n; anything else
// (including nil) degrades to ForCtx.
func (t *Team) ForWeightedCtx(rc *runctl.Control, n int, weights []int64, s Schedule, body func(worker, i int)) error {
	if len(weights) != n || n == 0 || s.Policy != Static || s.Chunk > 0 {
		return t.ForCtx(rc, n, s, body)
	}
	ls := &loopState{rc: rc}
	if err := rc.Err(); err != nil {
		return err
	}
	p := t.workers
	if p > n {
		p = n
	}
	ls.rec = t.metrics.begin(n, p, s)
	defer ls.rec.finish(t.metrics)
	return t.runLoop(ls, p, newWeightedStaticChunker(n, p, weights), body)
}

// For executes body(worker, i) for every i in [0, n) under schedule s.
// Iterations within a chunk run in order on one worker; chunks run
// concurrently across workers. For returns when every iteration has
// completed. A panic in body is recovered, the team drains, and the
// panic is re-raised as a *runctl.WorkerPanicError on the caller's
// goroutine; use ForCtx to receive it as an error instead.
func (t *Team) For(n int, s Schedule, body func(worker, i int)) {
	if err := t.ForCtx(nil, n, s, body); err != nil {
		panic(err)
	}
}

// ForChunksCtx is ForCtx over whole chunks: the body receives [lo, hi)
// ranges, for callers that amortize per-chunk setup (e.g. scratch
// buffers sized once). Stop checks and fault injection run at chunk
// boundaries only — a chunk is the unit of cancellation here.
func (t *Team) ForChunksCtx(rc *runctl.Control, n int, s Schedule, body func(worker, lo, hi int)) error {
	ls := &loopState{rc: rc}
	if err := rc.Err(); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	p := t.workers
	if p > n {
		p = n
	}
	ls.rec = t.metrics.begin(n, p, s)
	defer ls.rec.finish(t.metrics)
	ch := NewChunker(n, p, s)
	run := func(w int) {
		defer ls.recover(w)
		for {
			if ls.stopped() {
				return
			}
			lo, hi, ok := ch.Next(w)
			if !ok {
				return
			}
			injectFault(w, lo, hi, ls.rc)
			if ls.rec == nil {
				body(w, lo, hi)
				continue
			}
			t0 := time.Now()
			body(w, lo, hi)
			ls.rec.addChunk(w, lo, hi, int64(hi-lo), t0, time.Since(t0))
		}
	}
	if p == 1 {
		run(0)
		return ls.err()
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			run(w)
		}(w)
	}
	wg.Wait()
	return ls.err()
}

// ForChunks is like For but hands whole chunks to the body. Panics are
// contained and re-raised like For's.
func (t *Team) ForChunks(n int, s Schedule, body func(worker, lo, hi int)) {
	if err := t.ForChunksCtx(nil, n, s, body); err != nil {
		panic(err)
	}
}
