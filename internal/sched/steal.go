// Work-stealing execution for tree-shaped loops. The paper's Eclat
// parallelizes only the outer class loop (dynamic, chunk 1), so one fat
// subtree pins its worker while the rest idle — the straggler tail the
// trace observatory makes visible. ForTreeCtx keeps the paper's
// dynamic hand-out for the root tasks but lets a task spawn stealable
// subtasks onto its worker's deque: the owner pops newest-first (depth
// first, cache hot), idle workers steal oldest-first (closest to the
// root, the largest pending subtree). OpenMP 3 tasks would express the
// same thing; the paper predates their wide adoption and stops at
// schedule(dynamic,1) — DESIGN.md maps what changes and what stays
// faithful.
//
// The deques are mutex-based, not Chase-Lev: tasks are whole subtrees
// (thousands of set intersections each), so hand-out cost is noise and
// the simple implementation is the correct trade. Steal and spawn
// counts fold into the loop's Metrics (WorkerStats.Spawned/Stolen) and
// stolen tasks carry a marked span name so they show up distinctly in
// an exported Perfetto timeline.

package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runctl"
)

// SpawnFunc enqueues a stealable subtask onto the calling worker's
// deque. It must only be called from inside the task body it was
// handed to (the scheduler binds it to the executing worker). The
// subtask receives the id of whichever worker eventually runs it and a
// SpawnFunc bound to that worker, so spawning nests arbitrarily.
type SpawnFunc func(task func(worker int, spawn SpawnFunc))

// treeTask is one deque entry: a spawned subtask and its span id.
type treeTask struct {
	run func(worker int, spawn SpawnFunc)
	id  int
}

// stealDeque is one worker's task store. The owner pushes and pops at
// the tail (LIFO, depth-first); thieves take from the head (FIFO, the
// oldest and therefore largest pending subtree). A mutex per deque is
// ample: operations are per subtree task, never per iteration.
type stealDeque struct {
	mu    sync.Mutex
	tasks []treeTask
}

func (d *stealDeque) push(t treeTask) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

// pop takes the newest task (owner side).
func (d *stealDeque) pop() (treeTask, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return treeTask{}, false
	}
	t := d.tasks[len(d.tasks)-1]
	d.tasks[len(d.tasks)-1] = treeTask{} // release the closure
	d.tasks = d.tasks[:len(d.tasks)-1]
	return t, true
}

// stealFrom takes the oldest task (thief side).
func (d *stealDeque) stealFrom() (treeTask, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return treeTask{}, false
	}
	t := d.tasks[0]
	d.tasks[0] = treeTask{}
	d.tasks = d.tasks[1:]
	return t, true
}

// treeState is the shared state of one ForTreeCtx loop.
type treeState struct {
	ls       *loopState
	body     func(worker, root int, spawn SpawnFunc)
	deques   []stealDeque
	n        int
	nextRoot atomic.Int64
	// pending counts unfinished tasks: unclaimed roots plus spawned
	// tasks not yet completed. Zero means the tree is fully mined and
	// idle workers may exit.
	pending atomic.Int64
	// nextID allocates span ids for spawned tasks, starting past the
	// root range so every task's span id is unique within the loop.
	nextID atomic.Int64
}

// Idle backoff: a worker that finds no local work, no root, and
// nothing to steal yields a few times, then sleeps briefly so spinning
// at a phase's tail does not burn a core.
const (
	stealSpinYields = 64
	stealIdleSleep  = 20 * time.Microsecond
)

func (ts *treeState) spawnFunc(w int) SpawnFunc {
	return func(task func(int, SpawnFunc)) {
		ts.pending.Add(1)
		if ts.ls.rec != nil {
			ts.ls.rec.addSpawn(w)
		}
		id := int(ts.nextID.Add(1)) - 1
		ts.deques[w].push(treeTask{run: task, id: id})
	}
}

// runTask executes one task on worker w with accounting: fault hook at
// the task boundary (the steal-mode analogue of a chunk boundary),
// busy time and steal provenance into the loop record, completion into
// the pending count.
func (ts *treeState) runTask(w, id int, stolen bool, spawn SpawnFunc, run func(int, SpawnFunc)) {
	injectFault(w, id, id+1, ts.ls.rc)
	if ts.ls.rec == nil {
		run(w, spawn)
	} else {
		t0 := time.Now()
		run(w, spawn)
		ts.ls.rec.addTask(w, id, stolen, t0, time.Since(t0))
	}
	ts.pending.Add(-1)
}

// runWorker is one worker's scheduling loop: own deque first
// (depth-first), then an unclaimed root (the paper's dynamic hand-out),
// then a steal sweep, then idle backoff until the tree drains. A panic
// in a task is contained exactly like a chunked loop's: the run stops
// and sibling workers exit at their next stopped check.
func (ts *treeState) runWorker(w int) {
	defer ts.ls.recover(w)
	spawn := ts.spawnFunc(w)
	idle := 0
	for {
		if ts.ls.stopped() {
			return
		}
		if t, ok := ts.deques[w].pop(); ok {
			ts.runTask(w, t.id, false, spawn, t.run)
			idle = 0
			continue
		}
		if i := int(ts.nextRoot.Add(1)) - 1; i < ts.n {
			root := i
			ts.runTask(w, root, false, spawn, func(w int, sp SpawnFunc) {
				ts.body(w, root, sp)
			})
			idle = 0
			continue
		}
		if t, ok := ts.stealAny(w); ok {
			ts.runTask(w, t.id, true, spawn, t.run)
			idle = 0
			continue
		}
		if ts.pending.Load() == 0 {
			return
		}
		if idle++; idle <= stealSpinYields {
			runtime.Gosched()
		} else {
			time.Sleep(stealIdleSleep)
		}
	}
}

// stealAny sweeps the other workers' deques once, starting just past
// the thief so repeated steals spread across victims.
func (ts *treeState) stealAny(w int) (treeTask, bool) {
	p := len(ts.deques)
	for k := 1; k < p; k++ {
		if t, ok := ts.deques[(w+k)%p].stealFrom(); ok {
			return t, true
		}
	}
	return treeTask{}, false
}

// ForTreeCtx executes body(worker, root, spawn) for every root in
// [0, n) on a work-stealing team. Roots are handed out dynamically
// like ForCtx under schedule(dynamic,1); in addition, a body may call
// spawn(task) to enqueue a stealable subtask on its worker's deque —
// the owner runs its own subtasks depth-first, and an idle worker
// steals the oldest subtask of a busy one, so an unbalanced tree no
// longer serializes on the worker that claimed its root.
//
// Cancellation, budgets, and panic containment follow ForCtx: rc is
// checked before each task (bodies are expected to poll rc themselves
// inside long recursions, as the miners do), and a body panic stops
// the loop and is returned as a *runctl.WorkerPanicError. With
// metrics attached, every task is accounted to the worker that ran it
// (WorkerStats.Tasks includes spawned tasks, so on a completed loop
// TotalTasks == n + TotalSpawned) and stolen tasks are counted per
// thief and marked in the span trace.
func (t *Team) ForTreeCtx(rc *runctl.Control, n int, body func(worker, root int, spawn SpawnFunc)) error {
	ls := &loopState{rc: rc}
	if err := rc.Err(); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	// The team size is not clamped to n: spawned subtasks can employ
	// more workers than there are roots — that is the point.
	p := t.workers
	ls.rec = t.metrics.begin(n, p, Schedule{Policy: Steal})
	defer ls.rec.finish(t.metrics)
	ts := &treeState{ls: ls, body: body, deques: make([]stealDeque, p), n: n}
	ts.pending.Store(int64(n))
	ts.nextID.Store(int64(n))
	if p == 1 {
		ts.runWorker(0)
		return ls.err()
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			ts.runWorker(w)
		}(w)
	}
	wg.Wait()
	return ls.err()
}

// ForTree is ForTreeCtx without run control: panics are contained,
// drained, and re-raised on the caller's goroutine like For's.
func (t *Team) ForTree(n int, body func(worker, root int, spawn SpawnFunc)) {
	if err := t.ForTreeCtx(nil, n, body); err != nil {
		panic(err)
	}
}
