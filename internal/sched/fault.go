// Fault injection for the scheduler: a hook invoked at every chunk
// boundary of ForCtx/ForChunksCtx, used by the robustness tests to
// inject panics, delays, and cancellations at chosen points and prove
// the miners unwind cleanly.
//
// The hook itself is a single atomic pointer load per chunk — nil (and
// therefore free) in production. The environment-driven installer that
// arms it from SCHED_FAULT without code changes is gated behind the
// `faultinject` build tag (fault_env.go), so release binaries cannot be
// armed from the outside.

package sched

import (
	"sync/atomic"

	"repro/internal/runctl"
)

// FaultContext describes one chunk boundary: which worker is about to
// run chunk [Lo, Hi), the 1-based global sequence number of the chunk
// across all loops since the hook was installed, and the run's Control
// (nil for loops without run control) so a fault can cancel the run.
type FaultContext struct {
	Worker, Lo, Hi int
	Seq            int64
	Control        *runctl.Control
}

type faultFn func(FaultContext)

var (
	faultHook atomic.Pointer[faultFn]
	faultSeq  atomic.Int64
)

// SetFaultHook installs fn as the chunk-boundary fault hook and resets
// the chunk sequence counter; nil uninstalls it. The hook may panic
// (contained like any body panic), sleep, or stop the run via
// FaultContext.Control. Intended for tests.
func SetFaultHook(fn func(FaultContext)) {
	faultSeq.Store(0)
	if fn == nil {
		faultHook.Store(nil)
		return
	}
	f := faultFn(fn)
	faultHook.Store(&f)
}

// injectFault fires the hook, if installed, before a chunk runs.
func injectFault(w, lo, hi int, rc *runctl.Control) {
	h := faultHook.Load()
	if h == nil {
		return
	}
	(*h)(FaultContext{Worker: w, Lo: lo, Hi: hi, Seq: faultSeq.Add(1), Control: rc})
}
