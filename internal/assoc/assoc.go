// Package assoc generates association rules from mined frequent
// itemsets — the application layer of §II's motivating examples (market
// basket analysis, product recommendation). A rule X ⇒ Y holds when the
// itemset X∪Y is frequent and the confidence support(X∪Y)/support(X)
// clears a threshold.
//
// Rule generation uses the standard Agrawal–Srikant antecedent-shrinking
// search: for each frequent itemset, consequents grow from single items,
// pruned by the anti-monotonicity of confidence in the consequent.
package assoc

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/core"
	"repro/internal/itemset"
	"repro/internal/sched"
)

// Rule is one association rule over dense item codes.
type Rule struct {
	Antecedent itemset.Itemset // X
	Consequent itemset.Itemset // Y (disjoint from X)
	// Support is the absolute support of X ∪ Y.
	Support int
	// Confidence is support(X∪Y) / support(X).
	Confidence float64
	// Lift is confidence / P(Y); above 1 means positive correlation.
	Lift float64
}

// String renders the rule in the conventional X => Y form.
func (r Rule) String() string {
	return fmt.Sprintf("%v => %v (sup=%d conf=%.3f lift=%.2f)",
		r.Antecedent, r.Consequent, r.Support, r.Confidence, r.Lift)
}

// Generate derives every rule with confidence >= minConf from the
// frequent itemsets of res. Rules are returned in a deterministic order
// (by itemset, then consequent).
func Generate(res *core.Result, minConf float64) []Rule {
	return GenerateParallel(res, minConf, 1)
}

// GenerateParallel is Generate with the per-itemset consequent search
// spread over a worker team (each frequent itemset's rules are derived
// independently; dynamic scheduling handles the skew between small and
// large itemsets). The output is identical to Generate's, in the same
// deterministic order.
func GenerateParallel(res *core.Result, minConf float64, workers int) []Rule {
	support := res.ByKey()
	total := res.Rec.DB.NumTransactions()
	sorted := res.Sorted()
	team := sched.NewTeam(workers)
	private := make([][]Rule, team.Workers())
	team.For(len(sorted), sched.Schedule{Policy: sched.Dynamic, Chunk: 8}, func(w, i int) {
		private[w] = appendRules(private[w], sorted[i], support, total, minConf)
	})
	var rules []Rule
	for _, p := range private {
		rules = append(rules, p...)
	}
	slices.SortFunc(rules, func(a, b Rule) int {
		if c := a.Antecedent.Compare(b.Antecedent); c != 0 {
			return c
		}
		return a.Consequent.Compare(b.Consequent)
	})
	return rules
}

// appendRules derives every rule of one frequent itemset.
func appendRules(rules []Rule, c core.ItemsetCount, support map[string]int, total int, minConf float64) []Rule {
	if len(c.Items) < 2 {
		return rules
	}
	full := c.Items
	fullSup := c.Support
	// Candidate consequents, grown from single items (Apriori-style
	// over the consequent lattice).
	var level []itemset.Itemset
	for _, it := range full {
		level = append(level, itemset.New(it))
	}
	for len(level) > 0 {
		var kept []itemset.Itemset
		for _, y := range level {
			if len(y) == len(full) {
				continue // antecedent would be empty
			}
			x := full.Minus(y)
			xSup, ok := support[x.Key()]
			if !ok {
				continue // cannot happen for frequent full, defensive
			}
			conf := float64(fullSup) / float64(xSup)
			if conf < minConf {
				continue // no superset consequent can recover confidence
			}
			lift := 0.0
			if ySup, ok := support[y.Key()]; ok && ySup > 0 && total > 0 {
				lift = conf / (float64(ySup) / float64(total))
			}
			rules = append(rules, Rule{
				Antecedent: x,
				Consequent: y,
				Support:    fullSup,
				Confidence: conf,
				Lift:       lift,
			})
			kept = append(kept, y)
		}
		level = joinConsequents(kept)
	}
	return rules
}

// joinConsequents grows the consequent candidates one item, joining
// same-length sets sharing all but the last item.
func joinConsequents(level []itemset.Itemset) []itemset.Itemset {
	var next []itemset.Itemset
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			if c, ok := level[i].Join(level[j]); ok {
				next = append(next, c)
			}
		}
	}
	return next
}

// Decode maps a rule's item codes back through the result's recoding.
func Decode(res *core.Result, r Rule) Rule {
	r.Antecedent = res.Rec.Decode(r.Antecedent)
	r.Consequent = res.Rec.Decode(r.Consequent)
	return r
}

// TopByLift returns the n rules with the highest lift (ties broken by
// confidence, then deterministic order), a convenience for the examples.
func TopByLift(rules []Rule, n int) []Rule {
	out := make([]Rule, len(rules))
	copy(out, rules)
	slices.SortStableFunc(out, func(a, b Rule) int {
		if a.Lift != b.Lift {
			return cmp.Compare(b.Lift, a.Lift)
		}
		return cmp.Compare(b.Confidence, a.Confidence)
	})
	if n > len(out) {
		n = len(out)
	}
	return out[:n]
}
