package assoc

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eclat"
	"repro/internal/itemset"
	"repro/internal/vertical"
)

// The diapers-and-beer toy: items 1=diapers 2=beer 3=milk.
const basket = `1 2
1 2
1 2 3
1 2
3
1 3
2
`

func mined(t *testing.T, text string, minSup int) *core.Result {
	t.Helper()
	db, err := dataset.ReadFIMI("basket", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	rec := db.Recode(minSup)
	return must(eclat.Mine(rec, minSup, core.DefaultOptions(vertical.Tidset, 1)))
}

func findRule(rules []Rule, x, y itemset.Itemset) (Rule, bool) {
	for _, r := range rules {
		if r.Antecedent.Equal(x) && r.Consequent.Equal(y) {
			return r, true
		}
	}
	return Rule{}, false
}

func TestGenerateDiapersBeer(t *testing.T) {
	res := mined(t, basket, 2)
	rules := Generate(res, 0.7)
	// Dense codes: 1->0, 2->1, 3->2.
	// support(1)=5, support(2)=5, support(12)=4:
	// {1}=>{2} has confidence 4/5 = 0.8.
	r, ok := findRule(rules, itemset.New(0), itemset.New(1))
	if !ok {
		t.Fatalf("missing rule {diapers}=>{beer}; have %v", rules)
	}
	if math.Abs(r.Confidence-0.8) > 1e-9 || r.Support != 4 {
		t.Errorf("rule = %+v, want conf 0.8 sup 4", r)
	}
	// lift = conf / P(beer) = 0.8 / (5/7) = 1.12
	if math.Abs(r.Lift-0.8/(5.0/7.0)) > 1e-9 {
		t.Errorf("lift = %v", r.Lift)
	}
	// No rule below the confidence threshold.
	for _, r := range rules {
		if r.Confidence < 0.7 {
			t.Errorf("rule %v below threshold", r)
		}
	}
}

func TestGenerateConfidenceOne(t *testing.T) {
	// Items always together: both directions with confidence 1.
	res := mined(t, "1 2\n1 2\n1 2\n", 2)
	rules := Generate(res, 1.0)
	if len(rules) != 2 {
		t.Fatalf("rules = %v", rules)
	}
	for _, r := range rules {
		if r.Confidence != 1.0 {
			t.Errorf("confidence = %v", r.Confidence)
		}
	}
}

func TestGenerateMultiItemConsequents(t *testing.T) {
	// 4 identical transactions over 3 items: every partition of every
	// subset is a rule with confidence 1. For {0,1,2}: consequents of
	// size 1 (3) and size 2 (3) => 6 rules, plus 2 from each 2-itemset
	// (3 of them) => 12 total.
	res := mined(t, "1 2 3\n1 2 3\n1 2 3\n1 2 3\n", 2)
	rules := Generate(res, 0.9)
	if len(rules) != 12 {
		t.Fatalf("got %d rules, want 12: %v", len(rules), rules)
	}
	if _, ok := findRule(rules, itemset.New(0), itemset.New(1, 2)); !ok {
		t.Error("missing multi-item consequent rule {0}=>{1,2}")
	}
}

func TestDecode(t *testing.T) {
	res := mined(t, basket, 2)
	rules := Generate(res, 0.7)
	r, ok := findRule(rules, itemset.New(0), itemset.New(1))
	if !ok {
		t.Fatal("rule not found")
	}
	d := Decode(res, r)
	if !d.Antecedent.Equal(itemset.New(1)) || !d.Consequent.Equal(itemset.New(2)) {
		t.Errorf("decoded rule = %v => %v", d.Antecedent, d.Consequent)
	}
}

func TestTopByLift(t *testing.T) {
	res := mined(t, basket, 2)
	rules := Generate(res, 0.1)
	top := TopByLift(rules, 3)
	if len(top) != 3 {
		t.Fatalf("top = %d rules", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Lift > top[i-1].Lift {
			t.Errorf("top not sorted by lift: %v", top)
		}
	}
	// n larger than available clamps.
	if got := TopByLift(rules, 10000); len(got) != len(rules) {
		t.Errorf("TopByLift over-clamp: %d", len(got))
	}
}

func TestStringFormat(t *testing.T) {
	r := Rule{Antecedent: itemset.New(1), Consequent: itemset.New(2), Support: 3, Confidence: 0.5, Lift: 1.25}
	if got := r.String(); !strings.Contains(got, "=>") || !strings.Contains(got, "conf=0.500") {
		t.Errorf("String = %q", got)
	}
}

// Property: every generated rule satisfies its reported support and
// confidence against a direct horizontal count, and clears the threshold.
func TestQuickRulesSound(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := &dataset.DB{Name: "rand"}
		nTrans := 8 + r.Intn(30)
		nItems := 3 + r.Intn(5)
		for i := 0; i < nTrans; i++ {
			var items []itemset.Item
			for it := 0; it < nItems; it++ {
				if r.Intn(2) == 0 {
					items = append(items, itemset.Item(it))
				}
			}
			if len(items) == 0 {
				items = append(items, 0)
			}
			db.Transactions = append(db.Transactions, itemset.New(items...))
		}
		minSup := 2 + r.Intn(4)
		rec := db.Recode(minSup)
		res := must(eclat.Mine(rec, minSup, core.DefaultOptions(vertical.Diffset, 1)))
		minConf := 0.3 + r.Float64()*0.6
		count := func(s itemset.Itemset) int {
			c := 0
			for _, tr := range rec.DB.Transactions {
				if s.IsSubsetOf(tr) {
					c++
				}
			}
			return c
		}
		for _, rule := range Generate(res, minConf) {
			if rule.Antecedent.Intersect(rule.Consequent).Len() != 0 {
				return false
			}
			full := rule.Antecedent.Union(rule.Consequent)
			if count(full) != rule.Support {
				return false
			}
			wantConf := float64(rule.Support) / float64(count(rule.Antecedent))
			if math.Abs(wantConf-rule.Confidence) > 1e-9 || rule.Confidence < minConf {
				return false
			}
		}
		return true
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Errorf("rule soundness: %v", err)
	}
}

// Property: rule generation is complete — every (X ⇒ Y) over a frequent
// X∪Y with conf >= minConf appears. Checked exhaustively on small results.
func TestQuickRulesComplete(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := &dataset.DB{Name: "rand"}
		for i := 0; i < 12+r.Intn(10); i++ {
			var items []itemset.Item
			for it := 0; it < 4; it++ {
				if r.Intn(2) == 0 {
					items = append(items, itemset.Item(it))
				}
			}
			if len(items) == 0 {
				items = append(items, 0)
			}
			db.Transactions = append(db.Transactions, itemset.New(items...))
		}
		minSup := 2
		rec := db.Recode(minSup)
		res := must(eclat.Mine(rec, minSup, core.DefaultOptions(vertical.Tidset, 1)))
		minConf := 0.5
		rules := Generate(res, minConf)
		have := make(map[string]bool)
		for _, rule := range rules {
			have[rule.Antecedent.Key()+"|"+rule.Consequent.Key()] = true
		}
		support := res.ByKey()
		// Enumerate all splits of all frequent itemsets.
		for _, c := range res.Counts {
			full := c.Items
			if len(full) < 2 {
				continue
			}
			// All non-empty proper subsets as consequents.
			n := len(full)
			for mask := 1; mask < (1<<n)-1; mask++ {
				var y itemset.Itemset
				for b := 0; b < n; b++ {
					if mask&(1<<b) != 0 {
						y = append(y, full[b])
					}
				}
				y = itemset.New(y...)
				x := full.Minus(y)
				conf := float64(c.Support) / float64(support[x.Key()])
				if conf >= minConf && !have[x.Key()+"|"+y.Key()] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Errorf("rule completeness: %v", err)
	}
}

func TestGenerateParallelMatchesSerial(t *testing.T) {
	// A result with enough itemsets for real parallelism.
	var sb strings.Builder
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 60; i++ {
		for it := 1; it <= 7; it++ {
			if r.Intn(3) > 0 {
				sb.WriteString(" ")
				sb.WriteByte(byte('0' + it))
			}
		}
		sb.WriteString("\n")
	}
	res := mined(t, sb.String(), 5)
	serial := Generate(res, 0.4)
	if len(serial) == 0 {
		t.Fatal("no rules to compare")
	}
	for _, workers := range []int{2, 3, 8} {
		par := GenerateParallel(res, 0.4, workers)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d rules vs %d serial", workers, len(par), len(serial))
		}
		for i := range serial {
			if !par[i].Antecedent.Equal(serial[i].Antecedent) ||
				!par[i].Consequent.Equal(serial[i].Consequent) ||
				par[i].Support != serial[i].Support {
				t.Fatalf("workers=%d: rule %d differs: %v vs %v", workers, i, par[i], serial[i])
			}
		}
	}
}

// must unwraps the miner's (result, error) pair.
func must(res *core.Result, err error) *core.Result {
	if err != nil {
		panic(err)
	}
	return res
}
