package trie

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/itemset"
)

func TestNewRoot(t *testing.T) {
	tr := NewRoot([]int{5, 7, 3})
	l := tr.Level(1)
	if l == nil || l.Len() != 3 || l.K != 1 {
		t.Fatalf("root level malformed: %+v", l)
	}
	for i := 0; i < 3; i++ {
		if l.Items[i] != itemset.Item(i) || l.Parents[i] != NoParent {
			t.Errorf("node %d = (%d, %d)", i, l.Items[i], l.Parents[i])
		}
	}
	if l.Supports[1] != 7 {
		t.Errorf("support[1] = %d", l.Supports[1])
	}
	if tr.Level(2) != nil || tr.Level(0) != nil {
		t.Error("Level returned non-nil for absent level")
	}
}

func TestItemsetOf(t *testing.T) {
	tr := NewRoot([]int{1, 1, 1})
	c := tr.Generate()
	// candidates: {0,1},{0,2},{1,2}
	for i := range c.Px {
		c.Level.Supports[i] = 1
	}
	tr.Commit(c, 1)
	if got := tr.ItemsetOf(2, 1); !got.Equal(itemset.New(0, 2)) {
		t.Errorf("ItemsetOf(2,1) = %v", got)
	}
	if got := tr.ItemsetOf(1, 2); !got.Equal(itemset.New(2)) {
		t.Errorf("ItemsetOf(1,2) = %v", got)
	}
}

func TestGenerateLevel2(t *testing.T) {
	tr := NewRoot([]int{1, 1, 1, 1})
	c := tr.Generate()
	if c.Len() != 6 { // C(4,2)
		t.Fatalf("generated %d candidates, want 6", c.Len())
	}
	want := [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	for i, w := range want {
		if c.Px[i] != w[0] || c.Py[i] != w[1] {
			t.Errorf("candidate %d parents = (%d,%d), want %v", i, c.Px[i], c.Py[i], w)
		}
		if c.Level.Parents[i] != w[0] || c.Level.Items[i] != itemset.Item(w[1]) {
			t.Errorf("candidate %d node = (parent %d, item %d)", i, c.Level.Parents[i], c.Level.Items[i])
		}
	}
}

func TestGenerateRespectsSiblingRuns(t *testing.T) {
	// Build level 2 = {0,1},{0,2},{1,2} then generate level 3:
	// only {0,1} and {0,2} are siblings (parent 0), so one candidate {0,1,2}.
	tr := NewRoot([]int{1, 1, 1})
	c := tr.Generate()
	for i := range c.Px {
		c.Level.Supports[i] = 1
	}
	tr.Commit(c, 1)
	c3 := tr.Generate()
	if c3.Len() != 1 {
		t.Fatalf("level-3 candidates = %d, want 1", c3.Len())
	}
	full := tr.ItemsetOf(2, c3.Px[0]).Extend(c3.Level.Items[0])
	if !full.Equal(itemset.New(0, 1, 2)) {
		t.Errorf("candidate = %v", full)
	}
}

func TestCommitFiltersByMinSup(t *testing.T) {
	tr := NewRoot([]int{9, 9, 9})
	c := tr.Generate() // {0,1},{0,2},{1,2}
	c.Level.Supports[0] = 5
	c.Level.Supports[1] = 2
	c.Level.Supports[2] = 7
	lvl, kept := tr.Commit(c, 5)
	if lvl.Len() != 2 {
		t.Fatalf("kept %d nodes", lvl.Len())
	}
	if len(kept) != 2 || kept[0] != 0 || kept[1] != 2 {
		t.Errorf("kept rows = %v", kept)
	}
	if got := tr.ItemsetOf(2, 0); !got.Equal(itemset.New(0, 1)) {
		t.Errorf("node 0 = %v", got)
	}
	if got := tr.ItemsetOf(2, 1); !got.Equal(itemset.New(1, 2)) {
		t.Errorf("node 1 = %v", got)
	}
	if lvl.Supports[1] != 7 {
		t.Errorf("support = %d", lvl.Supports[1])
	}
}

func TestPrune(t *testing.T) {
	// Level 1: items 0..3. Level 2 (committed): {0,1},{0,2},{1,2},{1,3}.
	// {2,3} and {0,3} are infrequent. Level-3 join candidates:
	// from parent {0}: {0,1,2}; from parent {1}: {1,2,3}.
	// {0,1,2}: subsets {0,1},{0,2},{1,2} all present -> keep.
	// {1,2,3}: subset {2,3} missing -> pruned.
	tr := NewRoot([]int{1, 1, 1, 1})
	c := tr.Generate()
	for i := 0; i < c.Len(); i++ {
		full := tr.ItemsetOf(1, c.Px[i]).Extend(c.Level.Items[i])
		switch full.String() {
		case "{0, 1}", "{0, 2}", "{1, 2}", "{1, 3}":
			c.Level.Supports[i] = 1
		}
	}
	tr.Commit(c, 1)
	c3 := tr.Generate()
	if c3.Len() != 2 {
		t.Fatalf("pre-prune candidates = %d, want 2", c3.Len())
	}
	removed := tr.Prune(c3)
	if removed != 1 || c3.Len() != 1 {
		t.Fatalf("Prune removed %d, left %d", removed, c3.Len())
	}
	full := tr.ItemsetOf(2, c3.Px[0]).Extend(c3.Level.Items[0])
	if !full.Equal(itemset.New(0, 1, 2)) {
		t.Errorf("surviving candidate = %v", full)
	}
}

func TestPruneNoOpAtLevel2(t *testing.T) {
	tr := NewRoot([]int{1, 1})
	c := tr.Generate()
	if removed := tr.Prune(c); removed != 0 {
		t.Errorf("Prune removed %d at level 2", removed)
	}
}

func TestFrequentItemsets(t *testing.T) {
	tr := NewRoot([]int{4, 5})
	c := tr.Generate()
	c.Level.Supports[0] = 3
	tr.Commit(c, 1)
	sets, sups := tr.FrequentItemsets()
	if len(sets) != 3 {
		t.Fatalf("enumerated %d itemsets", len(sets))
	}
	wantSets := []itemset.Itemset{itemset.New(0), itemset.New(1), itemset.New(0, 1)}
	wantSups := []int{4, 5, 3}
	for i := range wantSets {
		if !sets[i].Equal(wantSets[i]) || sups[i] != wantSups[i] {
			t.Errorf("itemset %d = %v/%d, want %v/%d", i, sets[i], sups[i], wantSets[i], wantSups[i])
		}
	}
}

func TestEmptyRoot(t *testing.T) {
	tr := NewRoot(nil)
	c := tr.Generate()
	if c.Len() != 0 {
		t.Errorf("generated %d candidates from empty root", c.Len())
	}
	sets, _ := tr.FrequentItemsets()
	if len(sets) != 0 {
		t.Errorf("enumerated %d itemsets from empty trie", len(sets))
	}
}

// Property: generated candidates are exactly the joins of sibling pairs —
// sorted lexicographically, unique, with Px < Py and matching items.
func TestQuickGenerateSoundness(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		tr := NewRoot(make([]int, n))
		// Commit a random subset of the 2-itemsets.
		c := tr.Generate()
		for i := 0; i < c.Len(); i++ {
			if r.Intn(2) == 0 {
				c.Level.Supports[i] = 1
			}
		}
		lvl2, _ := tr.Commit(c, 1)
		c3 := tr.Generate()
		// Every candidate must come from two committed siblings and be
		// lexicographically increasing and unique.
		var prev itemset.Itemset
		for i := 0; i < c3.Len(); i++ {
			px, py := c3.Px[i], c3.Py[i]
			if px >= py || int(py) >= lvl2.Len() {
				return false
			}
			if lvl2.Parents[px] != lvl2.Parents[py] {
				return false
			}
			if c3.Level.Items[i] != lvl2.Items[py] || c3.Level.Parents[i] != px {
				return false
			}
			full := tr.ItemsetOf(2, px).Extend(c3.Level.Items[i])
			if prev != nil && prev.Compare(full) >= 0 {
				return false
			}
			prev = full
		}
		return true
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Errorf("generate soundness: %v", err)
	}
}

// Property: Prune never removes a candidate whose every k-subset is
// present, and always removes one with a missing subset.
func TestQuickPruneExact(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(6)
		tr := NewRoot(make([]int, n))
		c := tr.Generate()
		present := make(map[string]bool)
		for i := 0; i < c.Len(); i++ {
			if r.Intn(3) > 0 {
				c.Level.Supports[i] = 1
				full := tr.ItemsetOf(1, c.Px[i]).Extend(c.Level.Items[i])
				present[full.Key()] = true
			}
		}
		tr.Commit(c, 1)
		c3 := tr.Generate()
		// Compute expected keeps before pruning.
		var wantKeep []bool
		for i := 0; i < c3.Len(); i++ {
			full := tr.ItemsetOf(2, c3.Px[i]).Extend(c3.Level.Items[i])
			ok := true
			full.AllButOne(func(sub itemset.Itemset) {
				if !present[sub.Clone().Key()] {
					ok = false
				}
			})
			wantKeep = append(wantKeep, ok)
		}
		tr.Prune(c3)
		// Survivors must equal the expected keeps, in order.
		w := 0
		for i := range wantKeep {
			if wantKeep[i] {
				w++
			}
		}
		return c3.Len() == w
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Errorf("prune exactness: %v", err)
	}
}
