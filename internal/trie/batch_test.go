package trie

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sched"
)

// checkBlocks asserts the Blocks invariants: a sentinel-terminated,
// strictly increasing cover of [0, Len()) whose every block holds a
// single Px value and whose boundaries are exactly the Px change
// points.
func checkBlocks(t *testing.T, c *Candidates) {
	t.Helper()
	if len(c.Blocks) == 0 {
		t.Fatal("Blocks missing its sentinel")
	}
	if got := c.Blocks[len(c.Blocks)-1]; got != int32(c.Len()) {
		t.Fatalf("Blocks sentinel = %d, want %d", got, c.Len())
	}
	if c.Blocks[0] != 0 && c.Len() > 0 {
		t.Fatalf("first block starts at %d", c.Blocks[0])
	}
	for b := 0; b+1 < len(c.Blocks); b++ {
		lo, hi := c.Blocks[b], c.Blocks[b+1]
		if lo >= hi {
			t.Fatalf("block %d is empty or inverted: [%d, %d)", b, lo, hi)
		}
		for i := lo; i < hi; i++ {
			if c.Px[i] != c.Px[lo] {
				t.Fatalf("block %d mixes Px %d and %d", b, c.Px[lo], c.Px[i])
			}
		}
		if b > 0 && c.Px[lo] == c.Px[c.Blocks[b-1]] {
			t.Fatalf("blocks %d and %d share Px %d", b-1, b, c.Px[lo])
		}
	}
}

// randomTrie builds a trie with a committed random level 2, returning
// its level-3 candidates — the smallest shape where pruning can fire.
func randomTrie(r *rand.Rand) (*Trie, *Candidates) {
	n := 2 + r.Intn(10)
	tr := NewRoot(make([]int, n))
	c := tr.Generate()
	for i := 0; i < c.Len(); i++ {
		if r.Intn(2) == 0 {
			c.Level.Supports[i] = 1
		}
	}
	tr.Commit(c, 1)
	return tr, tr.Generate()
}

// TestBlocksInvariants: Generate and Prune's compaction both leave
// Blocks consistent with the Px runs, on random tries.
func TestBlocksInvariants(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		tr, c := randomTrie(r)
		checkBlocks(t, c)
		tr.Prune(c)
		checkBlocks(t, c)
	}
}

// TestBlocksEmpty: an empty generation still carries the sentinel.
func TestBlocksEmpty(t *testing.T) {
	c := NewRoot(nil).Generate()
	checkBlocks(t, c)
	if len(c.Blocks) != 1 {
		t.Fatalf("empty generation has %d block entries, want sentinel only", len(c.Blocks))
	}
}

// TestPruneParallelMatchesSerial: the team-parallel prune removes the
// identical candidate set (count AND rows) as the serial path, across
// random tries, team sizes, and schedules.
func TestPruneParallelMatchesSerial(t *testing.T) {
	schedules := []sched.Schedule{
		{Policy: sched.Static},
		{Policy: sched.Dynamic},
		{Policy: sched.Guided},
	}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		trSerial, cSerial := randomTrie(r)
		r = rand.New(rand.NewSource(seed))
		trPar, cPar := randomTrie(r)

		wantRemoved := trSerial.Prune(cSerial)
		pick := int(uint64(seed) % 12)
		team := sched.NewTeam(1 + pick%4)
		s := schedules[pick%len(schedules)]
		gotRemoved, err := trPar.PruneParallel(cPar, team, s, nil)
		if err != nil || gotRemoved != wantRemoved || cPar.Len() != cSerial.Len() {
			return false
		}
		for i := 0; i < cPar.Len(); i++ {
			if cPar.Px[i] != cSerial.Px[i] || cPar.Py[i] != cSerial.Py[i] ||
				cPar.Level.Items[i] != cSerial.Level.Items[i] {
				return false
			}
		}
		checkBlocks(t, cPar)
		return true
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 120}); err != nil {
		t.Errorf("parallel prune diverges from serial: %v", err)
	}
}
