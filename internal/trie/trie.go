// Package trie implements the candidate trie of §II-A of the paper.
//
// Rather than a pointer-linked tree, the trie is stored as one table per
// level (candidate size): a struct-of-arrays of (last item, prefix link)
// pairs. Each node at level k represents a k-itemset — the path from the
// root through its prefix chain. The flat per-level table is exactly what
// makes Apriori's support-counting loop a schedulable iteration space:
// "we represent the trie using a table that stores the nodes associated
// with each level of the tree."
//
// Candidate generation follows the classic join: two level-k nodes that
// share their level-(k−1) prefix node (i.e. are siblings) join into a
// level-(k+1) candidate. Optional subset pruning removes candidates with
// an infrequent k-subset before support counting is paid for them.
package trie

import (
	"repro/internal/itemset"
	"repro/internal/runctl"
	"repro/internal/sched"
)

// NoParent marks level-1 nodes, whose prefix is the empty itemset.
const NoParent int32 = -1

// Level is the table of all nodes of one trie level. Nodes are stored in
// lexicographic itemset order; siblings (equal Parent) are contiguous and
// their Items ascend. Construction through NewRoot and Generate preserves
// this invariant.
type Level struct {
	// K is the itemset size at this level (1 for roots).
	K int
	// Items holds each node's last item.
	Items []itemset.Item
	// Parents holds, for each node, the index of its prefix node in the
	// previous level (NoParent at level 1).
	Parents []int32
	// Supports holds each node's support once counted. Candidates start
	// at 0; Apriori fills them in during support counting.
	Supports []int
}

// Len returns the number of nodes in the level.
func (l *Level) Len() int { return len(l.Items) }

// Trie is the stack of levels built so far. Levels[0] is level 1.
type Trie struct {
	Levels []*Level
}

// NewRoot builds level 1 from the frequent items 0..n-1 (dense codes)
// with the given supports.
func NewRoot(supports []int) *Trie {
	l := &Level{K: 1}
	l.Items = make([]itemset.Item, len(supports))
	l.Parents = make([]int32, len(supports))
	l.Supports = make([]int, len(supports))
	for i := range supports {
		l.Items[i] = itemset.Item(i)
		l.Parents[i] = NoParent
		l.Supports[i] = supports[i]
	}
	return &Trie{Levels: []*Level{l}}
}

// Level returns the table for itemset size k (1-based), or nil if that
// level has not been built.
func (t *Trie) Level(k int) *Level {
	if k < 1 || k > len(t.Levels) {
		return nil
	}
	return t.Levels[k-1]
}

// ItemsetOf reconstructs the full itemset of node idx at itemset size k
// by walking the prefix chain. The result is freshly allocated.
func (t *Trie) ItemsetOf(k int, idx int32) itemset.Itemset {
	s := make(itemset.Itemset, k)
	for lvl := k; lvl >= 1; lvl-- {
		l := t.Levels[lvl-1]
		s[lvl-1] = l.Items[idx]
		idx = l.Parents[idx]
	}
	return s
}

// Candidates is one generation's worth of joined candidates, before
// support counting. The slices are parallel: candidate c has prefix node
// Px[c] and sibling node Py[c] in the parent level, and its own row c in
// Level. Px's last item always precedes Py's, which is the operand order
// the diffset Combine requires.
type Candidates struct {
	Level *Level
	Px    []int32
	Py    []int32
	// Blocks marks the prefix-block boundaries: candidates sharing a Px
	// are contiguous by construction (Px is non-decreasing across the
	// generation), and block b spans rows [Blocks[b], Blocks[b+1]). The
	// final entry is Len() — a sentinel, so len(Blocks)−1 is the number
	// of blocks. Maintained by Generate and by pruning's compaction;
	// this is the iteration space of the batched combine path.
	Blocks []int32
}

// Len returns the number of candidates.
func (c *Candidates) Len() int { return len(c.Px) }

// Generate joins every sibling pair of the top level into the next
// generation of candidates (paper Algorithm 1, candidate_generation).
// It does not push the new level onto the trie; the caller does that
// after pruning and support counting via Commit.
func (t *Trie) Generate() *Candidates {
	parent := t.Levels[len(t.Levels)-1]
	out := &Candidates{Level: &Level{K: parent.K + 1}}
	n := parent.Len()
	for runStart := 0; runStart < n; {
		runEnd := runStart + 1
		for runEnd < n && parent.Parents[runEnd] == parent.Parents[runStart] {
			runEnd++
		}
		for i := runStart; i < runEnd; i++ {
			if i+1 < runEnd {
				out.Blocks = append(out.Blocks, int32(len(out.Px)))
			}
			for j := i + 1; j < runEnd; j++ {
				out.Level.Items = append(out.Level.Items, parent.Items[j])
				out.Level.Parents = append(out.Level.Parents, int32(i))
				out.Px = append(out.Px, int32(i))
				out.Py = append(out.Py, int32(j))
			}
		}
		runStart = runEnd
	}
	out.Blocks = append(out.Blocks, int32(len(out.Px)))
	out.Level.Supports = make([]int, len(out.Level.Items))
	return out
}

// index maps a level's itemsets to node indices, for subset pruning.
type index map[string]int32

func (t *Trie) indexLevel(k int) index {
	l := t.Levels[k-1]
	idx := make(index, l.Len())
	for i := int32(0); i < int32(l.Len()); i++ {
		idx[t.ItemsetOf(k, i).Key()] = i
	}
	return idx
}

// Prune removes candidates that have an infrequent k-subset (the Apriori
// property): a (k+1)-candidate survives only if all k+1 of its k-subsets
// are nodes of the top level. The join already guarantees two of them;
// the remaining k−1 are checked against a hash index of the top level.
// Prune returns the number of candidates removed.
func (t *Trie) Prune(c *Candidates) int {
	k := c.Level.K - 1 // subset size to check
	if k < 2 {
		return 0 // 1-subsets of a 2-candidate are its items, frequent by construction
	}
	idx := t.indexLevel(k)
	keep := make([]bool, c.Len())
	removed := 0
	for i := range keep {
		keep[i] = t.subsetsFrequent(idx, c, k, i)
		if !keep[i] {
			removed++
		}
	}
	if removed > 0 {
		c.filter(keep)
	}
	return removed
}

// subsetsFrequent checks candidate i's Apriori property against the
// k-level hash index: every k-subset of the candidate must be a node
// of the top level.
func (t *Trie) subsetsFrequent(idx index, c *Candidates, k, i int) bool {
	full := t.ItemsetOf(k, c.Px[i]).Extend(c.Level.Items[i])
	ok := true
	full.AllButOne(func(sub itemset.Itemset) {
		if !ok {
			return
		}
		// The two generating parents are sub without the last or
		// second-to-last item; they exist by construction, but a map
		// hit is cheap and the uniform check keeps the code simple.
		if _, found := idx[sub.Key()]; !found {
			ok = false
		}
	})
	return ok
}

// PruneParallel is Prune with the per-candidate subset checks run on a
// worker team — previously a serial Amdahl term charged to the phase
// accounting as pure serial time. The k-level hash index is built once
// (serially; it is a shared read-only map during the checks), the keep
// bitmap is filled on the team, and the surviving rows are compacted
// serially. It removes exactly the set of candidates Prune removes.
// On cancellation the candidates are left unpruned (support counting
// never runs, so no wrong answer can be observed) and the stop cause
// is returned.
func (t *Trie) PruneParallel(c *Candidates, team *sched.Team, s sched.Schedule, rc *runctl.Control) (int, error) {
	k := c.Level.K - 1 // subset size to check
	if k < 2 {
		return 0, rc.Err()
	}
	idx := t.indexLevel(k)
	keep := make([]bool, c.Len())
	if err := team.ForCtx(rc, c.Len(), s, func(_, i int) {
		keep[i] = t.subsetsFrequent(idx, c, k, i)
	}); err != nil {
		return 0, err
	}
	removed := 0
	for _, ok := range keep {
		if !ok {
			removed++
		}
	}
	if removed > 0 {
		c.filter(keep)
	}
	return removed, nil
}

// filter compacts the candidate arrays to the kept rows.
func (c *Candidates) filter(keep []bool) {
	w := 0
	for i := range keep {
		if keep[i] {
			c.Level.Items[w] = c.Level.Items[i]
			c.Level.Parents[w] = c.Level.Parents[i]
			c.Level.Supports[w] = c.Level.Supports[i]
			c.Px[w] = c.Px[i]
			c.Py[w] = c.Py[i]
			w++
		}
	}
	c.Level.Items = c.Level.Items[:w]
	c.Level.Parents = c.Level.Parents[:w]
	c.Level.Supports = c.Level.Supports[:w]
	c.Px = c.Px[:w]
	c.Py = c.Py[:w]
	// Rebuild the prefix blocks: compaction preserves Px order, so the
	// kept rows' Px change points are the new block starts.
	c.Blocks = c.Blocks[:0]
	for i := 0; i < w; i++ {
		if i == 0 || c.Px[i] != c.Px[i-1] {
			c.Blocks = append(c.Blocks, int32(i))
		}
	}
	c.Blocks = append(c.Blocks, int32(w))
}

// Commit filters the candidates to those with Supports >= minSup
// (candidate_pruning of Algorithm 1), pushes the surviving level onto the
// trie, and returns it along with the kept candidate row indices
// (positions into the pre-filter candidate arrays), which the miner uses
// to carry vertical payloads forward.
func (t *Trie) Commit(c *Candidates, minSup int) (*Level, []int32) {
	var kept []int32
	for i := 0; i < c.Len(); i++ {
		if c.Level.Supports[i] >= minSup {
			kept = append(kept, int32(i))
		}
	}
	nl := &Level{K: c.Level.K}
	nl.Items = make([]itemset.Item, len(kept))
	nl.Parents = make([]int32, len(kept))
	nl.Supports = make([]int, len(kept))
	for w, i := range kept {
		nl.Items[w] = c.Level.Items[i]
		nl.Parents[w] = c.Level.Parents[i]
		nl.Supports[w] = c.Level.Supports[i]
	}
	// Reindexing: Parents reference the previous level, which is
	// unchanged — but only surviving *nodes of this level* matter for the
	// next generation's sibling runs, and their prefix links are intact.
	t.Levels = append(t.Levels, nl)
	return nl, kept
}

// FrequentItemsets enumerates every node of every committed level as a
// (itemset, support) pair, in level order then lexicographic order.
func (t *Trie) FrequentItemsets() ([]itemset.Itemset, []int) {
	var sets []itemset.Itemset
	var sups []int
	for k := 1; k <= len(t.Levels); k++ {
		l := t.Levels[k-1]
		for i := int32(0); i < int32(l.Len()); i++ {
			sets = append(sets, t.ItemsetOf(k, i))
			sups = append(sups, l.Supports[i])
		}
	}
	return sets, sups
}
