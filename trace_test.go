package fim

// End-to-end tests for the span timeline and kernel counters: a real
// mine on chess with Options.SpanTrace exports valid Chrome trace-event
// JSON (one row per worker), whose busy totals cross-check against the
// event stream's phase_end load metrics, and the kernel_counters event
// reports nonzero work for the representation that ran.

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/obs/export"
)

// mineTraced runs one mine with a span recorder attached alongside an
// event recorder.
func mineTraced(t *testing.T, db *DB, opt Options) (*SpanRecorder, []Event) {
	t.Helper()
	rec := &EventRecorder{}
	tr := NewSpanRecorder()
	opt.Observer = rec
	opt.SpanTrace = tr
	res, err := MineContext(context.Background(), db, 0.5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Len() == 0 {
		t.Fatal("traced mine returned no itemsets")
	}
	return tr, rec.Events()
}

// TestTraceExportChess: the acceptance path — mine chess, build the
// trace, schema-check it, count worker rows, and round-trip it through
// the JSON writer/reader.
func TestTraceExportChess(t *testing.T) {
	db, err := Dataset("chess", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	tr, events := mineTraced(t, db, Options{
		Algorithm: Eclat, Representation: Tidset, Workers: workers,
	})
	tf := export.BuildTrace(tr)
	if err := export.ValidateTrace(tf); err != nil {
		t.Fatalf("trace schema: %v", err)
	}
	rows := tf.WorkerRows()
	if len(rows) == 0 || len(rows) > workers {
		t.Fatalf("worker rows %v for a %d-worker run", rows, workers)
	}
	// Every worker that reported busy time in the event stream has its
	// own timeline row.
	busy := map[int]bool{}
	for _, e := range events {
		if e.Type == EventPhaseEnd {
			for _, l := range e.Load {
				if l.BusyNS > 0 {
					busy[l.Worker] = true
				}
			}
		}
	}
	rowSet := map[int]bool{}
	for _, tid := range rows {
		rowSet[tid-1] = true
	}
	for w := range busy {
		if !rowSet[w] {
			t.Errorf("worker %d has busy time but no timeline row (rows %v)", w, rows)
		}
	}

	var buf bytes.Buffer
	if err := export.WriteTrace(&buf, tf); err != nil {
		t.Fatal(err)
	}
	back, err := export.ReadTraceFile(&buf)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(back.TraceEvents) != len(tf.TraceEvents) {
		t.Errorf("round trip kept %d of %d trace events", len(back.TraceEvents), len(tf.TraceEvents))
	}
}

// TestTraceCrossCheck: the trace's per-worker chunk totals agree with
// the phase_end load metrics within the validator's 5% bound — both
// sinks are fed the same measured durations.
func TestTraceCrossCheck(t *testing.T) {
	db, err := Dataset("chess", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{Apriori, Eclat} {
		tr, events := mineTraced(t, db, Options{
			Algorithm: algo, Representation: Diffset, Workers: 4,
		})
		tf := export.BuildTrace(tr)
		if err := export.CrossCheckTrace(tf, events, 0.05); err != nil {
			t.Errorf("%v: %v", algo, err)
		}
	}
}

// TestKernelCountersEmitted: an observed run ends with one
// kernel_counters event whose contents match the representation that
// ran.
func TestKernelCountersEmitted(t *testing.T) {
	db := runctlDB(t)
	cases := []struct {
		rep  Representation
		want string
	}{
		{Tidset, "tids_compared"},
		{Bitvector, "words_anded"},
		{Diffset, "tids_compared"},
		{Hybrid, "nodes_built_hybrid"},
		{Tiled, "summary_words_anded"},
	}
	for _, c := range cases {
		_, err, events := mineRecorded(t, db, Options{
			Algorithm: Eclat, Representation: c.rep, Workers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		var counters map[string]int64
		n := 0
		for _, e := range events {
			if e.Type == EventKernelCounters {
				counters = e.Counters
				n++
			}
		}
		if n != 1 {
			t.Fatalf("%v: %d kernel_counters events, want 1", c.rep, n)
		}
		if counters[c.want] <= 0 {
			t.Errorf("%v: counter %q = %d, want > 0 (counters: %v)", c.rep, c.want, counters[c.want], counters)
		}
	}
}

// TestSpanTraceResultUnchanged: attaching the span recorder does not
// change the mining answer.
func TestSpanTraceResultUnchanged(t *testing.T) {
	db := runctlDB(t)
	ref, err := Mine(db, 0.5, Options{Algorithm: Eclat, Representation: Tidset, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewSpanRecorder()
	res, err := Mine(db, 0.5, Options{Algorithm: Eclat, Representation: Tidset, Workers: 4, SpanTrace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(ref) {
		t.Error("traced run disagrees with untraced reference")
	}
	if len(tr.Spans()) == 0 {
		t.Error("span recorder saw no spans")
	}
}
