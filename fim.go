// Package fim is a parallel frequent itemset mining library: a full
// reproduction of "Frequent Itemset Mining on Large-Scale Shared Memory
// Machines" (Zhang, Zhang & Bakos, IEEE CLUSTER 2011).
//
// It provides the paper's two parallel miners — Apriori (breadth-first,
// trie-of-level-tables candidates) and Eclat (depth-first equivalence
// classes) — over the paper's three vertical transaction representations
// (tidset, bitvector, diffset), plus an FP-growth baseline, association
// rule generation, closed/maximal condensation, synthetic equivalents of
// the paper's datasets, and a simulated NUMA machine that replays
// instrumented runs to reproduce the paper's 16–256-thread scalability
// tables and figures.
//
// Quick start:
//
//	db, _ := fim.ReadFIMIFile("retail.dat")
//	res, _ := fim.Mine(db, 0.02, fim.Options{
//		Algorithm: fim.Eclat,
//		Workers:   runtime.NumCPU(),
//	})
//	for _, c := range res.Decoded() {
//		fmt.Println(c.Items, c.Support)
//	}
//
// See the examples directory for runnable programs and cmd/fimbench for
// the paper's experiment harness.
package fim

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/apriori"
	"repro/internal/assoc"
	"repro/internal/closed"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/datasets"
	"repro/internal/eclat"
	"repro/internal/fpgrowth"
	"repro/internal/machine"
	"repro/internal/perf"
	"repro/internal/runctl"
	"repro/internal/sched"
	"repro/internal/vertical"
)

// Algorithm selects the mining algorithm.
type Algorithm = core.Algorithm

// The supported algorithms.
const (
	Apriori  = core.Apriori
	Eclat    = core.Eclat
	FPGrowth = core.FPGrowth
)

// Representation selects the vertical transaction layout.
type Representation = vertical.Kind

// The paper's three vertical representations, plus the Hybrid extension
// (Zaki's dEclat switch-over: tidsets that become diffsets when smaller).
const (
	Tidset    = vertical.Tidset
	Bitvector = vertical.Bitvector
	Diffset   = vertical.Diffset
	Hybrid    = vertical.Hybrid
)

// Re-exported core types. See the respective internal packages for the
// full method sets.
type (
	// DB is a horizontal transaction database.
	DB = dataset.DB
	// Result is the output of a mining run.
	Result = core.Result
	// ItemsetCount pairs an itemset with its support.
	ItemsetCount = core.ItemsetCount
	// Rule is an association rule.
	Rule = assoc.Rule
	// Trace records a run's parallel structure for machine replay.
	Trace = perf.Collector
	// MachineConfig describes a simulated NUMA machine.
	MachineConfig = machine.Config
	// SchedulePolicy names an OpenMP-style loop schedule.
	SchedulePolicy = sched.Policy
)

// Loop schedule policies.
const (
	Static  = sched.Static
	Dynamic = sched.Dynamic
	Guided  = sched.Guided
)

// Options configures Mine. The zero value mines with Apriori over
// tidsets (the zero Algorithm and Representation), which is sound but
// not the fastest configuration; DefaultOptions returns the paper's
// preferred one (parallel Eclat over diffsets).
type Options struct {
	// Algorithm selects the miner (Apriori, Eclat, FPGrowth).
	Algorithm Algorithm
	// Representation selects the vertical layout (Tidset, Bitvector,
	// Diffset, Hybrid).
	Representation Representation
	// Workers is the parallel team size; 0 means serial.
	Workers int
	// SchedulePolicy and ScheduleChunk override the algorithm's default
	// loop schedule when SetSchedule is true.
	SchedulePolicy SchedulePolicy
	ScheduleChunk  int
	SetSchedule    bool
	// DisablePruning turns off Apriori's subset pruning.
	DisablePruning bool
	// EclatDepth sets Eclat's flattening depth (see internal/eclat);
	// 0 uses the default.
	EclatDepth int
	// OrderByFrequency recodes items in ascending support order before
	// mining (the classic search-tree balancing optimization; ablation
	// A9). Results are identical after decoding.
	OrderByFrequency bool
	// LazyMaterialize makes Apriori prune candidates before allocating
	// their payloads (ablation A10).
	LazyMaterialize bool
	// Trace, when non-nil, records the run for NUMA replay via Simulate.
	Trace *Trace

	// Run control. Zero values mean "unlimited"; see the package
	// documentation's "Run control" section and MineContext.
	//
	// MaxMemoryBytes caps the live payload bytes (tidset/bitvector/
	// diffset sets) of the run, accounted per level/class from the
	// actual set sizes. On breach the run stops with a *BudgetError —
	// or, when DegradeToDiffset is set on an Apriori/Eclat run over
	// tidsets or bitvectors, switches the live payloads to diffsets
	// (the paper's own footprint cure, applied adaptively) and
	// continues.
	MaxMemoryBytes int64
	// MaxItemsets stops the run with a *BudgetError once more than this
	// many frequent itemsets have been emitted.
	MaxItemsets int64
	// MaxDuration stops the run with a *BudgetError after this much
	// wall-clock time.
	MaxDuration time.Duration
	// DegradeToDiffset turns a memory-budget breach into a mid-run
	// representation switch instead of an error, where the algorithm
	// and representation allow it.
	DegradeToDiffset bool
}

// BudgetError is the typed error a budget-stopped run returns; its
// Resource field names the exhausted budget ("memory", "itemsets",
// "duration"). The partial Result returned alongside it is still
// well-formed: Incomplete is set and every emitted support is exact.
type BudgetError = runctl.BudgetError

// WorkerPanicError reports a panic inside a mining worker, contained by
// the scheduler: the team drains cleanly and the panic surfaces as this
// error (with the worker's stack attached) instead of crashing the
// process.
type WorkerPanicError = runctl.WorkerPanicError

// Mine finds all itemsets with relative support >= minSupport (a
// fraction of the transaction count, e.g. 0.02 for 2%) in db. It is
// MineContext with a background context.
func Mine(db *DB, minSupport float64, opt Options) (*Result, error) {
	return MineContext(context.Background(), db, minSupport, opt)
}

// MineContext is Mine under a context: the run checks ctx at every
// scheduler chunk boundary and at each level/class of the search, so
// cancelling ctx (or its deadline expiring) makes the miner drain its
// worker team promptly and return ctx's error together with a partial
// Result — Result.Incomplete is set and every itemset it holds has its
// exact support.
//
// The same machinery enforces Options' budgets (MaxMemoryBytes,
// MaxItemsets, MaxDuration), which stop the run with a *BudgetError or,
// for the memory budget under DegradeToDiffset, switch the run to
// diffsets mid-flight. A worker panic is contained and returned as a
// *WorkerPanicError instead of crashing the process.
func MineContext(ctx context.Context, db *DB, minSupport float64, opt Options) (*Result, error) {
	if db == nil {
		return nil, fmt.Errorf("fim: nil database")
	}
	if minSupport < 0 || minSupport > 1 {
		return nil, fmt.Errorf("fim: relative support %v outside [0, 1]", minSupport)
	}
	abs := db.AbsoluteSupport(minSupport)
	return MineAbsoluteContext(ctx, db, abs, opt)
}

// MineAbsolute is Mine with an absolute transaction-count threshold.
func MineAbsolute(db *DB, minSupport int, opt Options) (*Result, error) {
	return MineAbsoluteContext(context.Background(), db, minSupport, opt)
}

// MineAbsoluteContext is MineContext with an absolute transaction-count
// threshold.
func MineAbsoluteContext(ctx context.Context, db *DB, minSupport int, opt Options) (*Result, error) {
	if db == nil {
		return nil, fmt.Errorf("fim: nil database")
	}
	if minSupport < 1 {
		return nil, fmt.Errorf("fim: absolute support %d below 1", minSupport)
	}
	order := dataset.ByCode
	if opt.OrderByFrequency {
		order = dataset.ByFrequency
	}
	rec := db.RecodeOrdered(minSupport, order)
	rc := runctl.New(ctx, runctl.Budget{
		MaxMemoryBytes:   opt.MaxMemoryBytes,
		MaxItemsets:      opt.MaxItemsets,
		MaxDuration:      opt.MaxDuration,
		DegradeToDiffset: opt.DegradeToDiffset,
	})
	defer rc.Close()
	copt := core.Options{
		Representation:  opt.Representation,
		Workers:         opt.Workers,
		Collector:       opt.Trace,
		Control:         rc,
		Prune:           !opt.DisablePruning,
		EclatDepth:      opt.EclatDepth,
		LazyMaterialize: opt.LazyMaterialize,
	}
	if opt.SetSchedule {
		copt.Schedule = sched.Schedule{Policy: opt.SchedulePolicy, Chunk: opt.ScheduleChunk}
		copt.HasSchedule = true
	}
	switch opt.Algorithm {
	case core.Apriori:
		return apriori.Mine(rec, minSupport, copt)
	case core.Eclat:
		return eclat.Mine(rec, minSupport, copt)
	case core.FPGrowth:
		return fpgrowth.Mine(rec, minSupport, copt)
	}
	return nil, fmt.Errorf("fim: unknown algorithm %v", opt.Algorithm)
}

// DefaultOptions returns the paper's preferred configuration: parallel
// Eclat over diffsets.
func DefaultOptions(workers int) Options {
	return Options{Algorithm: Eclat, Representation: Diffset, Workers: workers}
}

// ReadFIMI parses a database in FIMI repository text format (one
// transaction per line, space-separated non-negative integer items).
func ReadFIMI(name string, r io.Reader) (*DB, error) {
	return dataset.ReadFIMI(name, r)
}

// ReadFIMIFile reads a FIMI-format file from disk.
func ReadFIMIFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadFIMI(path, f)
}

// WriteFIMI writes db in FIMI text format.
func WriteFIMI(w io.Writer, db *DB) error {
	return dataset.WriteFIMI(w, db)
}

// Rules derives association rules with confidence >= minConfidence from
// a mining result.
func Rules(res *Result, minConfidence float64) []Rule {
	return assoc.Generate(res, minConfidence)
}

// RulesParallel is Rules with the per-itemset search spread over a
// worker team; output is identical.
func RulesParallel(res *Result, minConfidence float64, workers int) []Rule {
	return assoc.GenerateParallel(res, minConfidence, workers)
}

// DecodeRule maps a rule back to the database's original item codes.
func DecodeRule(res *Result, r Rule) Rule {
	return assoc.Decode(res, r)
}

// TopRulesByLift returns the n highest-lift rules.
func TopRulesByLift(rules []Rule, n int) []Rule {
	return assoc.TopByLift(rules, n)
}

// ClosedItemsets filters a result to its closed itemsets (no superset
// with equal support).
func ClosedItemsets(res *Result) []ItemsetCount {
	return closed.Closed(res)
}

// MaximalItemsets filters a result to its maximal itemsets (no frequent
// superset).
func MaximalItemsets(res *Result) []ItemsetCount {
	return closed.Maximal(res)
}

// Dataset builds one of the paper's synthetic datasets by name (chess,
// mushroom, pumsb, pumsb_star, T40I10D100K, accidents) at the given
// scale (1 = published transaction count).
func Dataset(name string, scale float64) (*DB, error) {
	d, err := datasets.Get(name)
	if err != nil {
		return nil, err
	}
	return d.Build(scale), nil
}

// DatasetNames lists the available synthetic datasets.
func DatasetNames() []string {
	var names []string
	for _, d := range datasets.All() {
		names = append(names, d.Name)
	}
	return names
}

// Blacklight returns the simulated machine configuration of the paper's
// testbed.
func Blacklight() MachineConfig { return machine.Blacklight() }

// Simulate replays a recorded trace (Options.Trace) on a simulated NUMA
// machine at the given thread count, returning the simulated seconds.
func Simulate(trace *Trace, threads int, cfg MachineConfig) float64 {
	return machine.Simulate(trace, threads, cfg).Seconds
}

// SimulateSpeedup returns the simulated speedup curve of a trace over
// the given thread counts, relative to one thread.
func SimulateSpeedup(trace *Trace, threads []int, cfg MachineConfig) []float64 {
	_, speedups := machine.Speedup(trace, threads, cfg)
	return speedups
}
