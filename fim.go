// Package fim is a parallel frequent itemset mining library: a full
// reproduction of "Frequent Itemset Mining on Large-Scale Shared Memory
// Machines" (Zhang, Zhang & Bakos, IEEE CLUSTER 2011).
//
// It provides the paper's two parallel miners — Apriori (breadth-first,
// trie-of-level-tables candidates) and Eclat (depth-first equivalence
// classes) — over the paper's three vertical transaction representations
// (tidset, bitvector, diffset), plus an FP-growth baseline, association
// rule generation, closed/maximal condensation, synthetic equivalents of
// the paper's datasets, and a simulated NUMA machine that replays
// instrumented runs to reproduce the paper's 16–256-thread scalability
// tables and figures.
//
// Quick start:
//
//	db, _ := fim.ReadFIMIFile("retail.dat")
//	res, _ := fim.Mine(db, 0.02, fim.Options{
//		Algorithm: fim.Eclat,
//		Workers:   runtime.NumCPU(),
//	})
//	for _, c := range res.Decoded() {
//		fmt.Println(c.Items, c.Support)
//	}
//
// See the examples directory for runnable programs and cmd/fimbench for
// the paper's experiment harness.
package fim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/apriori"
	"repro/internal/assoc"
	"repro/internal/closed"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/datasets"
	"repro/internal/eclat"
	"repro/internal/fpgrowth"
	"repro/internal/kcount"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/obs/prof"
	"repro/internal/perf"
	"repro/internal/runctl"
	"repro/internal/sched"
	"repro/internal/tidset"
	"repro/internal/vertical"
)

// Algorithm selects the mining algorithm.
type Algorithm = core.Algorithm

// The supported algorithms.
const (
	Apriori  = core.Apriori
	Eclat    = core.Eclat
	FPGrowth = core.FPGrowth
)

// Representation selects the vertical transaction layout.
type Representation = vertical.Kind

// The paper's three vertical representations, plus three extensions:
// the Hybrid switch-over (Zaki's dEclat: tidsets that become diffsets
// when smaller), the Tiled layout (tidset semantics over fixed 128-TID
// tiles with occupancy-summary prefilters and a per-tile sparse/dense
// payload switch; see internal/tidset's Tiled type), and the Nodeset
// representation (Deng's DiffNodesets: PPC-tree node lists with linear
// merges; see internal/nodeset).
const (
	Tidset    = vertical.Tidset
	Bitvector = vertical.Bitvector
	Diffset   = vertical.Diffset
	Hybrid    = vertical.Hybrid
	Tiled     = vertical.Tiled
	Nodeset   = vertical.Nodeset
)

// ParseRepresentation maps a representation name ("tidset",
// "bitvector", "diffset", "hybrid", "tiled", "nodeset") to its
// Representation — the single parser every cmd shares, so a new kind
// becomes flag-reachable by joining vertical.ParseKind alone.
func ParseRepresentation(s string) (Representation, error) {
	return vertical.ParseKind(s)
}

// ApplyLayout resolves a "-layout tiled|flat" selector against a
// representation: "tiled" switches Tidset to the tiled layout (and
// rejects representations without a tiled form), "flat" switches Tiled
// back, and "" is the identity. Layout never changes mining semantics —
// tiled and flat runs produce byte-identical itemsets.
func ApplyLayout(rep Representation, layout string) (Representation, error) {
	return vertical.WithLayout(rep, layout)
}

// LoadCalibration applies a per-host kernel calibration file (knobs
// like the merge/gallop crossover and the tiled sparse/dense crossover,
// produced by cmd/calibrate). The env var named by CalibrationEnv is
// honored automatically by the shipped binaries; embedders call this
// directly. All knobs are speed dials only — results are identical for
// any legal calibration.
func LoadCalibration(path string) error {
	_, err := tidset.LoadCalibrationFile(path)
	return err
}

// CalibrationEnv is the environment variable naming a calibration file
// (see LoadCalibration).
const CalibrationEnv = tidset.CalibrationEnv

// Re-exported core types. See the respective internal packages for the
// full method sets.
type (
	// DB is a horizontal transaction database.
	DB = dataset.DB
	// Result is the output of a mining run.
	Result = core.Result
	// ItemsetCount pairs an itemset with its support.
	ItemsetCount = core.ItemsetCount
	// Rule is an association rule.
	Rule = assoc.Rule
	// Trace records a run's parallel structure for machine replay.
	Trace = perf.Collector
	// MachineConfig describes a simulated NUMA machine.
	MachineConfig = machine.Config
	// SchedulePolicy names an OpenMP-style loop schedule.
	SchedulePolicy = sched.Policy
	// Observer receives the structured event stream of a mining run
	// (Options.Observer). Implementations must be safe for concurrent
	// use. See internal/obs for the event vocabulary and obs/export for
	// ready-made sinks (JSON lines, live progress, run reports, HTTP).
	Observer = obs.Observer
	// Event is one observation in the stream; Event.Type says which
	// fields are meaningful.
	Event = obs.Event
	// EventType names an event kind ("run_start", "level_end", ...).
	EventType = obs.Type
	// WorkerLoad is one worker's share of a scheduler loop, carried by
	// phase_end events.
	WorkerLoad = obs.WorkerLoad
	// EventRecorder is an Observer that retains every event in order —
	// the simplest sink.
	EventRecorder = obs.Recorder
	// SpanRecorder records the run's span timeline (run → level/class →
	// scheduler chunk, one row per worker) for Chrome trace-event
	// export (Options.SpanTrace; see obs/export's trace-file writer).
	SpanRecorder = obs.TraceRecorder
	// Span is one recorded interval of a span timeline.
	Span = obs.Span
	// KernelStats is a snapshot of the per-kernel operation counters
	// (tidset merge/gallop steps, bitvector word ops, nodes built and
	// bytes materialized per representation).
	KernelStats = kcount.Stats
)

// NewSpanRecorder returns an empty span-timeline recorder for
// Options.SpanTrace.
func NewSpanRecorder() *SpanRecorder { return obs.NewTraceRecorder() }

// The event kinds, re-exported from internal/obs.
const (
	EventRunStart       = obs.RunStart
	EventLevelStart     = obs.LevelStart
	EventLevelEnd       = obs.LevelEnd
	EventPhaseEnd       = obs.PhaseEnd
	EventBudgetWarning  = obs.BudgetWarning
	EventDegraded       = obs.Degraded
	EventStop           = obs.Stop
	EventKernelCounters = obs.KernelCounters
	EventRunEnd         = obs.RunEnd
)

// MultiObserver fans the event stream out to several observers. Nil
// entries are skipped; zero or one live observer keeps the cheap path.
func MultiObserver(os ...Observer) Observer { return obs.Multi(os...) }

// Loop schedule policies. Steal is the work-stealing extension: flat
// loops run like Dynamic with chunk 1, and Eclat's recursion spawns
// stealable subtree tasks so fat classes no longer pin a worker.
const (
	Static  = sched.Static
	Dynamic = sched.Dynamic
	Guided  = sched.Guided
	Steal   = sched.Steal
)

// ParseSchedulePolicy maps a schedule name ("static", "dynamic",
// "guided", "steal") to its policy, for flag parsing.
func ParseSchedulePolicy(s string) (SchedulePolicy, error) { return sched.ParsePolicy(s) }

// Options configures Mine. The zero value mines with Apriori over
// tidsets (the zero Algorithm and Representation), which is sound but
// not the fastest configuration; DefaultOptions returns the paper's
// preferred one (parallel Eclat over diffsets).
type Options struct {
	// Algorithm selects the miner (Apriori, Eclat, FPGrowth).
	Algorithm Algorithm
	// Representation selects the vertical layout (Tidset, Bitvector,
	// Diffset, Hybrid).
	Representation Representation
	// Workers is the parallel team size; 0 means serial.
	Workers int
	// SchedulePolicy and ScheduleChunk override the algorithm's default
	// loop schedule when SetSchedule is true.
	SchedulePolicy SchedulePolicy
	ScheduleChunk  int
	SetSchedule    bool
	// DisablePruning turns off Apriori's subset pruning.
	DisablePruning bool
	// DisableBatch turns off the prefix-blocked batched combine kernels
	// and runs the miners' combine loops pairwise — the escape hatch and
	// A/B lever for the batching optimization. Results are identical
	// either way.
	DisableBatch bool
	// EclatDepth sets Eclat's flattening depth (see internal/eclat);
	// 0 uses the default.
	EclatDepth int
	// OrderByFrequency recodes items in ascending support order before
	// mining (the classic search-tree balancing optimization; ablation
	// A9). Results are identical after decoding.
	OrderByFrequency bool
	// LazyMaterialize makes Apriori prune candidates before allocating
	// their payloads (ablation A10).
	LazyMaterialize bool
	// Trace, when non-nil, records the run for NUMA replay via Simulate.
	Trace *Trace
	// Observer, when non-nil, receives the run's structured event stream
	// live: run_start, level/class boundaries with candidate and
	// frequent counts and live payload bytes, per-loop worker load with
	// busy-time imbalance, budget warnings, degrade transitions, the
	// stop cause, and run_end with totals and the peak footprint. A nil
	// Observer costs the engine one branch per emit site.
	Observer Observer
	// BudgetWarnAt sets the budget fractions (ascending, each in (0,1))
	// at which budget_warning events fire for the memory and itemsets
	// budgets. Empty means {0.5, 0.8, 0.95}. Only consulted when
	// Observer is set and the corresponding budget is non-zero.
	BudgetWarnAt []float64
	// RunID, when non-zero, is a run correlation identifier stamped onto
	// every event the run emits (and therefore onto SSE streams and run
	// reports built from them). The serving layer sets it to the run's
	// registry ID so /metrics anomalies, flight-recorder entries, traces
	// and reports join on one key.
	RunID int64
	// ProfileLabels attaches pprof goroutine labels to the run: every
	// CPU-profile sample taken while the run executes carries fim_run_id
	// (when RunID is set), fim_tenant (when Tenant is set), fim_algo,
	// fim_rep and fim_phase — the current level_start phase name — so
	// `go tool pprof` can slice a service or CLI profile by run and by
	// search phase. Worker goroutines inherit the labels at spawn; the
	// cost is one label update per level, nothing per sample.
	ProfileLabels bool
	// Tenant is the requesting tenant for the fim_tenant profile label.
	// Only consulted when ProfileLabels is set.
	Tenant string
	// SpanTrace, when non-nil, records the run's span timeline: the run
	// and every level/class stage on a coordinator row, every scheduler
	// chunk on its worker's row, with real start times and durations.
	// Export it as Chrome trace-event JSON (Perfetto-loadable) with
	// obs/export's trace-file writer, or via fimmine -trace. The
	// recorder also receives the event stream, so it needs no entry in
	// Observer.
	SpanTrace *SpanRecorder

	// Run control. Zero values mean "unlimited"; see the package
	// documentation's "Run control" section and MineContext.
	//
	// MaxMemoryBytes caps the live payload bytes (tidset/bitvector/
	// diffset sets) of the run, accounted per level/class from the
	// actual set sizes. On breach the run stops with a *BudgetError —
	// or, when DegradeToDiffset is set on an Apriori/Eclat run over
	// tidsets or bitvectors, switches the live payloads to diffsets
	// (the paper's own footprint cure, applied adaptively) and
	// continues.
	MaxMemoryBytes int64
	// MaxItemsets stops the run with a *BudgetError once more than this
	// many frequent itemsets have been emitted.
	MaxItemsets int64
	// MaxDuration stops the run with a *BudgetError after this much
	// wall-clock time.
	MaxDuration time.Duration
	// DegradeToDiffset turns a memory-budget breach into a mid-run
	// representation switch instead of an error, where the algorithm
	// and representation allow it.
	DegradeToDiffset bool
	// SharedPool, when non-nil, joins the run to a machine-wide live-
	// payload capacity pool spanning concurrent runs (NewSharedPool).
	// The run's memory deltas are mirrored into the pool; when the
	// *pool* goes over capacity the run observing the breach stops with
	// a *BudgetError whose Resource is "shared-memory". This is the
	// serving layer's global memory budget: per-run MaxMemoryBytes
	// bounds one tenant, the pool bounds the machine.
	SharedPool *SharedPool
}

// SharedPool is a shared live-payload byte budget across concurrent
// mining runs (Options.SharedPool). See internal/runctl's Pool.
type SharedPool = runctl.Pool

// NewSharedPool returns a shared budget of capBytes live payload bytes
// across all runs attached to it. capBytes <= 0 tracks usage without a
// hard cap.
func NewSharedPool(capBytes int64) *SharedPool { return runctl.NewPool(capBytes) }

// BudgetError is the typed error a budget-stopped run returns; its
// Resource field names the exhausted budget ("memory", "itemsets",
// "duration"). The partial Result returned alongside it is still
// well-formed: Incomplete is set and every emitted support is exact.
type BudgetError = runctl.BudgetError

// WorkerPanicError reports a panic inside a mining worker, contained by
// the scheduler: the team drains cleanly and the panic surfaces as this
// error (with the worker's stack attached) instead of crashing the
// process.
type WorkerPanicError = runctl.WorkerPanicError

// Mine finds all itemsets with relative support >= minSupport (a
// fraction of the transaction count, e.g. 0.02 for 2%) in db. It is
// MineContext with a background context.
func Mine(db *DB, minSupport float64, opt Options) (*Result, error) {
	return MineContext(context.Background(), db, minSupport, opt)
}

// MineContext is Mine under a context: the run checks ctx at every
// scheduler chunk boundary and at each level/class of the search, so
// cancelling ctx (or its deadline expiring) makes the miner drain its
// worker team promptly and return ctx's error together with a partial
// Result — Result.Incomplete is set and every itemset it holds has its
// exact support.
//
// The same machinery enforces Options' budgets (MaxMemoryBytes,
// MaxItemsets, MaxDuration), which stop the run with a *BudgetError or,
// for the memory budget under DegradeToDiffset, switch the run to
// diffsets mid-flight. A worker panic is contained and returned as a
// *WorkerPanicError instead of crashing the process.
func MineContext(ctx context.Context, db *DB, minSupport float64, opt Options) (*Result, error) {
	if db == nil {
		return nil, fmt.Errorf("fim: nil database")
	}
	if minSupport < 0 || minSupport > 1 {
		return nil, fmt.Errorf("fim: relative support %v outside [0, 1]", minSupport)
	}
	abs := db.AbsoluteSupport(minSupport)
	return MineAbsoluteContext(ctx, db, abs, opt)
}

// MineAbsolute is Mine with an absolute transaction-count threshold.
func MineAbsolute(db *DB, minSupport int, opt Options) (*Result, error) {
	return MineAbsoluteContext(context.Background(), db, minSupport, opt)
}

// MineAbsoluteContext is MineContext with an absolute transaction-count
// threshold.
func MineAbsoluteContext(ctx context.Context, db *DB, minSupport int, opt Options) (*Result, error) {
	if db == nil {
		return nil, fmt.Errorf("fim: nil database")
	}
	if minSupport < 1 {
		return nil, fmt.Errorf("fim: absolute support %d below 1", minSupport)
	}
	switch opt.Algorithm {
	case core.Apriori, core.Eclat, core.FPGrowth:
	default:
		return nil, fmt.Errorf("fim: unknown algorithm %v", opt.Algorithm)
	}
	// The nodeset representation always mines in frequency order: the
	// PPC tree inserts items by descending dense code, so ascending-
	// support codes put frequent items near the root — Deng's
	// compressed-tree order, which both shrinks the tree and makes the
	// class anchor the least frequent member. The order changes only
	// internal codes; mined itemsets are identical after decoding.
	order := dataset.ByCode
	if opt.OrderByFrequency || opt.Representation == Nodeset {
		order = dataset.ByFrequency
	}
	rec := db.RecodeOrdered(minSupport, order)
	rc := runctl.New(ctx, runctl.Budget{
		MaxMemoryBytes:   opt.MaxMemoryBytes,
		MaxItemsets:      opt.MaxItemsets,
		MaxDuration:      opt.MaxDuration,
		DegradeToDiffset: opt.DegradeToDiffset,
	})
	defer rc.Close()
	if opt.SharedPool != nil {
		rc.AttachPool(opt.SharedPool)
	}
	copt := core.Options{
		Representation:  opt.Representation,
		Workers:         opt.Workers,
		Collector:       opt.Trace,
		Control:         rc,
		Prune:           !opt.DisablePruning,
		Batch:           !opt.DisableBatch,
		EclatDepth:      opt.EclatDepth,
		LazyMaterialize: opt.LazyMaterialize,
	}
	if opt.SetSchedule {
		copt.Schedule = sched.Schedule{Policy: opt.SchedulePolicy, Chunk: opt.ScheduleChunk}
		copt.HasSchedule = true
	}
	// The span recorder rides the same event stream as the other sinks
	// and additionally taps the scheduler's chunk hook.
	o := opt.Observer
	if opt.SpanTrace != nil {
		o = obs.Multi(o, opt.SpanTrace)
	}
	// The phase labeler rides the event stream too: level_start events
	// are emitted on the coordinator goroutine before each expansion's
	// worker teams spawn, which is exactly where a pprof label update
	// must land for the workers to inherit it.
	var phaser *prof.PhaseLabeler
	if opt.ProfileLabels {
		phaser = prof.NewPhaseLabeler()
		o = obs.Multi(o, phaser)
	}
	if opt.RunID != 0 {
		o = obs.WithRunID(o, opt.RunID)
	}
	var ktok kcount.RunToken
	kdone := false
	if o != nil {
		copt.Observer = o
		copt.Metrics = sched.NewMetrics()
		if opt.SpanTrace != nil {
			copt.Metrics.SetTracer(opt.SpanTrace)
		}
		// Kernel counters are process-global; the token detects whether
		// another instrumented run overlapped this one, in which case the
		// delta is not attributable to this run and is not reported.
		ktok = kcount.BeginRun()
		defer func() {
			if !kdone {
				ktok.End()
			}
		}()
		rc.TrackMemory()
		fracs := opt.BudgetWarnAt
		if len(fracs) == 0 {
			fracs = []float64{0.5, 0.8, 0.95}
		}
		rc.SetWarnFunc(fracs, func(resource string, frac float64, used, limit int64) {
			o.Event(obs.Event{Type: obs.BudgetWarning,
				Resource: resource, Fraction: frac, Used: used, Limit: limit})
		})
		o.Event(obs.Event{Type: obs.RunStart,
			Dataset:        db.Name,
			Algorithm:      opt.Algorithm.String(),
			Representation: opt.Representation.String(),
			Workers:        opt.Workers,
			MinSupport:     minSupport,
			Transactions:   len(db.Transactions),
		})
	}
	start := time.Now()
	var res *Result
	var err error
	runMine := func() {
		switch opt.Algorithm {
		case core.Apriori:
			res, err = apriori.Mine(rec, minSupport, copt)
		case core.Eclat:
			res, err = eclat.Mine(rec, minSupport, copt)
		case core.FPGrowth:
			res, err = fpgrowth.Mine(rec, minSupport, copt)
		}
	}
	if opt.ProfileLabels {
		// Every CPU sample of the run — coordinator and inherited worker
		// goroutines alike — carries the run identity; the labeler keeps
		// fim_phase current as levels open.
		prof.Do(ctx, prof.RunLabels{
			RunID:  opt.RunID,
			Tenant: opt.Tenant,
			Algo:   opt.Algorithm.String(),
			Rep:    opt.Representation.String(),
		}, func(lctx context.Context) {
			phaser.Arm(lctx)
			runMine()
		})
	} else {
		runMine()
	}
	if o != nil {
		// Flush scheduler loops that finished after the last level
		// boundary (early-stopped runs leave undrained phases behind).
		core.EmitPhases(o, copt.Metrics)
		delta, exclusive := ktok.End()
		kdone = true
		if exclusive {
			o.Event(obs.Event{Type: obs.KernelCounters, Counters: delta.Map()})
		}
		if err != nil {
			o.Event(obs.Event{Type: obs.Stop, Reason: StopReason(err), Err: err.Error()})
		}
		e := obs.Event{Type: obs.RunEnd,
			Algorithm:     opt.Algorithm.String(),
			ElapsedNS:     int64(time.Since(start)),
			PeakLiveBytes: rc.PeakMem(),
		}
		if res != nil {
			e.Itemsets = int64(res.Len())
			e.MaxK = res.MaxK
			e.Incomplete = res.Incomplete
			e.DegradedRun = res.Degraded
		}
		o.Event(e)
	}
	return res, err
}

// StopReason classifies the error an incomplete run returned into the
// stable reason strings carried by stop events: "worker-panic",
// "budget:memory" / "budget:itemsets" / "budget:duration", "canceled",
// "deadline", or "error" for anything else.
func StopReason(err error) string {
	var wp *runctl.WorkerPanicError
	var be *runctl.BudgetError
	switch {
	case err == nil:
		return ""
	case errors.As(err, &wp):
		return "worker-panic"
	case errors.As(err, &be):
		return "budget:" + be.Resource
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	}
	return "error"
}

// DefaultOptions returns the paper's preferred configuration: parallel
// Eclat over diffsets.
func DefaultOptions(workers int) Options {
	return Options{Algorithm: Eclat, Representation: Diffset, Workers: workers}
}

// ReadFIMI parses a database in FIMI repository text format (one
// transaction per line, space-separated non-negative integer items).
// It applies no size limits; parse untrusted input with
// ReadFIMILimits.
func ReadFIMI(name string, r io.Reader) (*DB, error) {
	return dataset.ReadFIMI(name, r)
}

// FIMILimits bounds what ReadFIMILimits accepts: maximum line length,
// transaction count, and total item occurrences. Zero fields mean "no
// limit on this axis".
type FIMILimits = dataset.Limits

// FIMIParseError is the typed error malformed or over-limit FIMI input
// fails with, carrying the input name, 1-based line number, offending
// token (empty for limit breaches) and message.
type FIMIParseError = dataset.ParseError

// ReadFIMILimits is ReadFIMI under explicit input limits, for untrusted
// sources such as service uploads: a breach fails fast with a typed
// *FIMIParseError instead of ballooning the process.
func ReadFIMILimits(name string, r io.Reader, lim FIMILimits) (*DB, error) {
	return dataset.ReadFIMILimits(name, r, lim)
}

// ReadFIMIFile reads a FIMI-format file from disk.
func ReadFIMIFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadFIMI(path, f)
}

// WriteFIMI writes db in FIMI text format.
func WriteFIMI(w io.Writer, db *DB) error {
	return dataset.WriteFIMI(w, db)
}

// Rules derives association rules with confidence >= minConfidence from
// a mining result.
func Rules(res *Result, minConfidence float64) []Rule {
	return assoc.Generate(res, minConfidence)
}

// RulesParallel is Rules with the per-itemset search spread over a
// worker team; output is identical.
func RulesParallel(res *Result, minConfidence float64, workers int) []Rule {
	return assoc.GenerateParallel(res, minConfidence, workers)
}

// DecodeRule maps a rule back to the database's original item codes.
func DecodeRule(res *Result, r Rule) Rule {
	return assoc.Decode(res, r)
}

// TopRulesByLift returns the n highest-lift rules.
func TopRulesByLift(rules []Rule, n int) []Rule {
	return assoc.TopByLift(rules, n)
}

// ClosedItemsets filters a result to its closed itemsets (no superset
// with equal support).
func ClosedItemsets(res *Result) []ItemsetCount {
	return closed.Closed(res)
}

// MaximalItemsets filters a result to its maximal itemsets (no frequent
// superset).
func MaximalItemsets(res *Result) []ItemsetCount {
	return closed.Maximal(res)
}

// Dataset builds one of the paper's synthetic datasets by name (chess,
// mushroom, pumsb, pumsb_star, T40I10D100K, accidents) at the given
// scale (1 = published transaction count).
func Dataset(name string, scale float64) (*DB, error) {
	d, err := datasets.Get(name)
	if err != nil {
		return nil, err
	}
	return d.Build(scale), nil
}

// DatasetNames lists the available synthetic datasets.
func DatasetNames() []string {
	var names []string
	for _, d := range datasets.All() {
		names = append(names, d.Name)
	}
	return names
}

// Blacklight returns the simulated machine configuration of the paper's
// testbed.
func Blacklight() MachineConfig { return machine.Blacklight() }

// Simulate replays a recorded trace (Options.Trace) on a simulated NUMA
// machine at the given thread count, returning the simulated seconds.
func Simulate(trace *Trace, threads int, cfg MachineConfig) float64 {
	return machine.Simulate(trace, threads, cfg).Seconds
}

// SimulateSpeedup returns the simulated speedup curve of a trace over
// the given thread counts, relative to one thread.
func SimulateSpeedup(trace *Trace, threads []int, cfg MachineConfig) []float64 {
	_, speedups := machine.Speedup(trace, threads, cfg)
	return speedups
}
