package fim_test

import (
	"fmt"
	"log"
	"strings"

	fim "repro"
)

// The classic market-basket example: mine itemsets bought together in at
// least two of nine receipts.
func ExampleMine() {
	db, err := fim.ReadFIMI("receipts", strings.NewReader(
		"1 2 5\n2 4\n2 3\n1 2 4\n1 3\n2 3\n1 3\n1 2 3 5\n1 2 3\n"))
	if err != nil {
		log.Fatal(err)
	}
	res, err := fim.Mine(db, 2.0/9.0, fim.DefaultOptions(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("frequent itemsets:", res.Len())
	for _, c := range res.Decoded()[:3] {
		fmt.Printf("%v appears %d times\n", c.Items, c.Support)
	}
	// Output:
	// frequent itemsets: 13
	// {1} appears 6 times
	// {1, 2} appears 4 times
	// {1, 2, 3} appears 2 times
}

// Association rules with confidence and lift, from a mined result.
func ExampleRules() {
	db, _ := fim.ReadFIMI("baskets", strings.NewReader(
		"1 2\n1 2\n1 2 3\n1 2\n3\n1 3\n2\n"))
	res, _ := fim.Mine(db, 0.25, fim.DefaultOptions(1))
	for _, r := range fim.Rules(res, 0.8) {
		d := fim.DecodeRule(res, r)
		fmt.Printf("%v => %v (%.0f%%)\n", d.Antecedent, d.Consequent, d.Confidence*100)
	}
	// Output:
	// {1} => {2} (80%)
	// {2} => {1} (80%)
}

// Replaying an instrumented run on the simulated Blacklight machine —
// the paper's scalability experiment in six lines.
func ExampleSimulateSpeedup() {
	db, _ := fim.Dataset("chess", 0.1)
	trace := &fim.Trace{}
	opt := fim.DefaultOptions(1)
	opt.Trace = trace
	if _, err := fim.Mine(db, 0.4, opt); err != nil {
		log.Fatal(err)
	}
	speedups := fim.SimulateSpeedup(trace, []int{1, 16}, fim.Blacklight())
	fmt.Printf("1 thread: %.1fx, 16 threads: >%.0fx\n", speedups[0], speedups[1]-1)
	// Output:
	// 1 thread: 1.0x, 16 threads: >15x
}
