package fim

import (
	"testing"

	"repro/internal/apriori"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/datasets"
	"repro/internal/eclat"
	"repro/internal/fpgrowth"
	"repro/internal/horizontal"
	"repro/internal/ptrie"
	"repro/internal/verify"
	"repro/internal/vertical"
)

// TestGrandCrossCheck mines the same structured dataset (a small chess
// build — dense, correlated, multi-level) with every engine in the
// repository and asserts they all produce exactly the same frequent
// itemsets with the same supports:
//
//   - Apriori × {tidset, bitvector, diffset, hybrid} × {serial, parallel}
//   - Eclat × {tidset, bitvector, diffset, hybrid} × depths {1,2,3,4}
//   - FP-growth (serial + parallel)
//   - horizontal Apriori × {partial, atomic}
//   - pointer-trie Apriori
//   - the exhaustive reference miner
func TestGrandCrossCheck(t *testing.T) {
	db := datasets.Chess(0.03) // ~96 transactions, still deep
	rec := db.Recode(db.AbsoluteSupport(0.4))
	if len(rec.Items) < 8 {
		t.Fatalf("test dataset too thin: %d items", len(rec.Items))
	}
	ref := verify.Reference(rec, rec.MinSup)
	if ref.Len() < 50 {
		t.Fatalf("test workload too small: %d itemsets", ref.Len())
	}

	check := func(name string, res *core.Result) {
		t.Helper()
		if !res.Equal(ref) {
			t.Errorf("%s disagrees with reference:\n%s", name, verify.Diff(res, ref))
		}
	}

	for _, rep := range vertical.AllKinds() {
		for _, workers := range []int{1, 4} {
			check("apriori/"+rep.String(),
				must(apriori.Mine(rec, rec.MinSup, core.DefaultOptions(rep, workers))))
			for _, depth := range []int{1, 2, 3, 4} {
				opt := core.DefaultOptions(rep, workers)
				opt.EclatDepth = depth
				check("eclat/"+rep.String(), must(eclat.Mine(rec, rec.MinSup, opt)))
			}
		}
	}
	check("fpgrowth/serial", must(fpgrowth.Mine(rec, rec.MinSup, core.DefaultOptions(vertical.Tidset, 1))))
	check("fpgrowth/parallel", must(fpgrowth.Mine(rec, rec.MinSup, core.DefaultOptions(vertical.Tidset, 4))))
	check("horizontal/partial", horizontal.Mine(rec, rec.MinSup, 3, horizontal.Partial, nil))
	check("horizontal/atomic", horizontal.Mine(rec, rec.MinSup, 3, horizontal.Atomic, nil))
	check("ptrie", ptrie.Mine(rec, rec.MinSup, 3))
}

// TestCrossCheckFrequencyOrder repeats the cross-check under
// frequency-ordered recoding: all engines must agree there too, and the
// decoded result must match the code-ordered run.
func TestCrossCheckFrequencyOrder(t *testing.T) {
	db := datasets.Mushroom(0.02)
	minSup := db.AbsoluteSupport(0.4)
	byCode := db.Recode(minSup)
	byFreq := db.RecodeOrdered(minSup, dataset.ByFrequency)
	refCode := verify.Reference(byCode, minSup)
	refFreq := verify.Reference(byFreq, minSup)
	for _, rep := range vertical.AllKinds() {
		res := must(eclat.Mine(byFreq, minSup, core.DefaultOptions(rep, 2)))
		if !res.Equal(refFreq) {
			t.Errorf("eclat/%v under frequency order:\n%s", rep, verify.Diff(res, refFreq))
		}
	}
	// Decoded views agree across orders.
	a := refCode.Decoded()
	b := refFreq.Decoded()
	if len(a) != len(b) {
		t.Fatalf("decoded counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Items.Equal(b[i].Items) || a[i].Support != b[i].Support {
			t.Errorf("decoded mismatch at %d: %v/%d vs %v/%d",
				i, a[i].Items, a[i].Support, b[i].Items, b[i].Support)
		}
	}
}

// must unwraps a miner's (result, error) pair; the cross-checks run
// without budgets, so an error fails the run immediately.
func must(res *core.Result, err error) *core.Result {
	if err != nil {
		panic(err)
	}
	return res
}
